"""kd-tree implementations.

Two variants are provided, matching the two roles the kd-tree plays in the
paper:

``KDTree``
    A static, bulk-loaded kd-tree over a fixed point set.  Nodes are stored in
    flat numpy arrays; leaves hold small buckets of points so that the
    per-leaf distance computations are vectorised.  It answers

    * ``range_search(query, radius)`` / ``range_count(query, radius)`` --
      the primitive behind local-density computation (Lemma 1), and
    * ``nearest_neighbor(query, ...)`` / ``knn(query, k)`` -- used by the
      Approx-DPC exact-dependency fallback (case (i) of §4.3).

``IncrementalKDTree``
    A pointer-based kd-tree supporting one-point-at-a-time insertion.  Ex-DPC
    (§3) destroys the static tree, sorts points by descending local density
    and inserts them one by one; because the tree only ever contains points
    with *higher* density than the current query point, a plain nearest
    neighbour search returns the exact dependent point.

Both trees use the Euclidean metric and break ties by the smallest index.

Batch queries
-------------
Every scalar query on :class:`KDTree` has a vectorised batch counterpart --
``range_count_batch``, ``range_search_batch``, ``knn_batch`` and
``nearest_neighbor_batch``.  The batch methods traverse the tree
*iteratively*: an explicit stack holds ``(node, query-subset)`` frontier
entries, an internal node partitions its query subset between children with
one vectorised comparison, and a leaf evaluates all ``|subset| x |bucket|``
distances in a single numpy kernel.  Each tree node is therefore visited at
most once per batch call (with whatever query subset reaches it) instead of
once per query, which removes the per-point Python recursion that dominates
the scalar hot path.

The batch methods apply exactly the same per-query pruning rules and
identical per-pair arithmetic (``diff`` then the canonical sequential
squared-norm accumulation of :mod:`repro.kernels`) as the scalar ones, so
their results are bit-for-bit equal; the property suite
in ``tests/property/test_batch_equivalence.py`` locks that in.  Two
deliberate, documented normalisations keep results order-independent:
``range_search_batch`` returns each query's hit indices in ascending order
(the scalar method reports traversal order), and the nearest-neighbour
queries break exact distance ties by the smallest point index.

Dual-tree queries
-----------------
When *every* point is both a query and a datum -- the density phase of every
DPC variant is an ``n``-point range-count self-join -- even the batch engine
pays one pruned frontier traversal per query chunk.  The dual-tree methods
traverse two trees *simultaneously* over node **pairs** instead:

* ``range_count_dual(radius)`` -- the symmetric self-join behind
  ``engine="dual"`` density computation;
* ``range_count_dual_vs(queries_tree, radius)`` -- join the points of another
  tree against this one (``predict`` / streaming ingest);
* ``range_search_dual_vs(queries_tree, radius)`` -- the joint/picked range
  searches of Approx-DPC and S-Approx-DPC, with per-query radii.

Each tree node carries its bounding box (``KDTreeArrays.bbox_min`` /
``bbox_max``).  A node pair whose boxes are farther apart than the radius is
*excluded* -- the whole ``|A| x |B|`` block of pairs is skipped with zero
distance computations; a pair whose boxes fit entirely within the radius is
*included* -- the block is credited in O(1) (counts) or materialised from the
permutation slices without distances (searches).  Only ambiguous pairs
descend, bottoming out in blocked NumPy kernels over **contiguous** slices of
the leaf-ordered point copy (:attr:`KDTree.points_ordered`), so the hot
kernels never gather through the permutation.

The dual methods return bit-for-bit the same counts/index sets as the batch
methods: every blocked kernel -- whichever kernel tier executes it (see
:mod:`repro.kernels`) -- uses the identical canonical distance arithmetic,
and the inclusion/exclusion tests are floating-point safe (monotonicity of
IEEE subtraction/multiplication/addition guarantees every computed pair
distance lies within the computed node-pair bounds, for ``float64`` and
``float32`` storage alike, because the bounds reduce per-dimension terms in
the same sequential order as the kernels).  Work counters differ by design:
the whole point of the dual traversal is that credited blocks perform no
distance calculations.
"""

from __future__ import annotations

import heapq
import math
import os
from dataclasses import dataclass, fields, replace
from typing import Mapping, Optional

import numpy as np

from repro.kernels import (
    KERNEL_TIERS,
    get_kernel,
    pair_distances_sq,
    resolve_kernel,
    squared_norms,
)
from repro.utils.counters import WorkCounter
from repro.utils.distance import point_to_points_sq
from repro.utils.validation import check_points, check_positive, check_positive_int

__all__ = [
    "KDTree",
    "KDTreeArrays",
    "IncrementalKDTree",
    "STORAGE_DTYPES",
    "check_storage_dtype",
    "DUAL_FRONTIER_TARGET",
    "DUAL_FRONTIER_AUTO",
    "DUAL_FRONTIER_ENV",
    "adaptive_dual_frontier",
    "resolve_dual_frontier",
]

_NO_CHILD = -1

#: Supported point-storage dtypes.  ``float32`` halves the memory footprint
#: and cache traffic of the point matrix, split values and bounding boxes;
#: every engine (scalar / batch / dual) then computes distances in float32,
#: so results stay self-consistent across engines (property-tested) even
#: though individual counts may differ from a float64 run near the radius
#: boundary.
STORAGE_DTYPES = ("float64", "float32")

#: Floor of the frontier size: the minimum number of node pairs
#: :meth:`KDTree.dual_self_frontier` expands the self-join root pair into
#: (and of query-subtree work units :meth:`KDTree.node_frontier` produces
#: for the nearest-denser join).  The frontier is the canonical work-unit
#: decomposition shared by every execution backend: serial runs process the
#: same pairs a process-backend worker pool does, which keeps results *and*
#: work counters bit-for-bit identical across backends and worker counts.
DUAL_FRONTIER_TARGET = 64

#: Sentinel ``dual_frontier`` value (and the default): the frontier size is
#: derived per fit from the data scale by :func:`adaptive_dual_frontier`.
#: Estimators record the *resolved* integer in ``get_params()`` once fitted
#: (and therefore in model snapshots), so restores replay the exact
#: decomposition -- and work counters -- of the original fit.
DUAL_FRONTIER_AUTO = "auto"

#: Environment variable supplying the ``dual_frontier`` default when an
#: estimator is built with ``dual_frontier=None``; accepts ``"auto"`` or a
#: positive integer.  The resolved value is recorded in ``get_params()``
#: (and therefore in model snapshots), so a restored model reproduces the
#: same frontier decomposition -- and the same work counters -- as the fit
#: that produced it.
DUAL_FRONTIER_ENV = "REPRO_DUAL_FRONTIER"


def resolve_dual_frontier(value) -> int | str:
    """Normalise a ``dual_frontier`` parameter.

    ``None`` reads :data:`DUAL_FRONTIER_ENV` and falls back to
    :data:`DUAL_FRONTIER_AUTO`; any explicit value must be ``"auto"`` or a
    positive integer (non-positive and unparsable values raise a
    ``ValueError`` naming the offending input).  Resolution to a concrete
    integer happens at fit time (:func:`adaptive_dual_frontier` needs the
    data scale); resolution of the *environment* happens once, at estimator
    construction, so the environment cannot silently change the
    decomposition between a fit and a snapshot restore.
    """
    from_env = False
    if value is None:
        env = os.environ.get(DUAL_FRONTIER_ENV)
        if not env:
            return DUAL_FRONTIER_AUTO
        value = env
        from_env = True
    if isinstance(value, str):
        if value == DUAL_FRONTIER_AUTO:
            return DUAL_FRONTIER_AUTO
        source = f"{DUAL_FRONTIER_ENV}={value!r}" if from_env else repr(value)
        try:
            value = int(value)
        except ValueError:
            raise ValueError(
                f"dual_frontier must be 'auto' or a positive integer, "
                f"got {source}"
            ) from None
    return check_positive_int(value, "dual_frontier")


def adaptive_dual_frontier(n: int, leaf_size: int) -> int:
    """Deterministic scale-aware frontier size for an ``n``-point tree.

    Grows with the square root of the leaf count -- enough independent work
    units to load-balance wide worker pools on large inputs without
    flooding small fits with per-unit overhead -- clamped to
    ``[DUAL_FRONTIER_TARGET, 4096]``.  A pure function of ``(n,
    leaf_size)``, so every backend (and every worker rebuilding the
    decomposition from shared memory) derives the identical frontier.
    """
    n = check_positive_int(n, "n")
    leaf_size = check_positive_int(leaf_size, "leaf_size")
    leaves = -(-n // leaf_size)
    return max(DUAL_FRONTIER_TARGET, min(4096, 4 * math.isqrt(leaves)))

#: Node pairs with both sides at or below this many points stop descending
#: and run one blocked distance kernel over their contiguous point slices.
#: Larger blocks trade a few redundant pair distances for fewer node-pair
#: visits; at or below the leaf size the kernels bottom out on leaf buckets.
#: (The mega-batch chunk size is the selected kernel tier's
#: ``block_budget``; chunking never changes results or counters.)
_DUAL_BLOCK = 32

#: Region-size multipliers of the nearest-denser seeding pyramid: every
#: query is first joined against its home block of ``_DUAL_BLOCK`` points,
#: and queries that found no denser point there (local density maxima)
#: escalate to an 8x and then a 64x larger home region.  The survivors --
#: peaks denser than their whole 64x neighbourhood, a vanishing fraction --
#: are resolved exactly against the full point set.  The pyramid gives every
#: query a *finite, tight* pruning bound before the pair traversal starts;
#: without it, one unresolved local maximum per leaf would poison the
#: per-node bounds and the traversal would degenerate towards the quadratic
#: join.
_NN_SEED_LEVELS = (1, 8, 64)


def check_storage_dtype(dtype) -> np.dtype:
    """Normalise a point-storage ``dtype`` parameter to a numpy dtype.

    Accepts anything ``np.dtype`` does (``"float32"``, ``np.float64``,
    ``"f4"``, ``"double"``, ...) as long as it names one of
    :data:`STORAGE_DTYPES`.
    """
    try:
        name = np.dtype(dtype).name
    except TypeError:
        name = str(dtype)
    if name not in STORAGE_DTYPES:
        raise ValueError(
            f"dtype must be one of {STORAGE_DTYPES}, got {dtype!r}"
        )
    return np.dtype(name)


def _group_boundaries(sorted_keys: np.ndarray):
    """Yield ``(lo, hi)`` slices of equal-key runs in a sorted key array."""
    if sorted_keys.size == 0:
        return
    breaks = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    lo = 0
    for hi in breaks:
        yield int(lo), int(hi)
        lo = hi
    yield int(lo), int(sorted_keys.size)


def _block_pair_distances_sq(q_block: np.ndarray, d_block: np.ndarray) -> np.ndarray:
    """Squared distances between ``(g, q, d)`` and ``(g, j, d)`` point blocks.

    Thin alias of the canonical numpy-tier kernel
    (:func:`repro.kernels.pair_distances_sq`): sequential per-dimension
    accumulation at every ``d``, no 4-D temporary.  Kept for driver-side
    callers (the re-cluster index) that want the reference arithmetic
    without tier dispatch.
    """
    return pair_distances_sq(q_block, d_block)


def _as_density_vector(values, n: int, name: str) -> np.ndarray:
    """Normalise a per-point density array to a contiguous float64 vector.

    A conforming input (1-D float64 contiguous of length ``n``) is returned
    *as the same object* so identity-keyed aggregate caches keep hitting
    across repeated join calls.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    if arr.shape[0] != n:
        raise ValueError(f"{name} must hold one density per point ({n})")
    return arr


def _ragged_copy_indices(
    dest_base: np.ndarray, src_base: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flat destination/source indices for copying many variable-length runs.

    Run ``i`` copies ``lengths[i]`` consecutive elements from
    ``src_base[i]...`` to ``dest_base[i]...``; the returned index arrays
    drive one fancy gather/scatter instead of a Python loop over runs.
    """
    total = int(lengths.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    ends = np.cumsum(lengths)
    within = np.arange(total, dtype=np.intp) - np.repeat(ends - lengths, lengths)
    return (
        np.repeat(dest_base, lengths) + within,
        np.repeat(src_base, lengths) + within,
    )


def _concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], starts[i] + lengths[i])`` runs.

    Built with one ragged gather (destination bases are the exclusive
    cumulative lengths, so the source indices *are* the concatenation).
    """
    dest_base = np.cumsum(lengths) - lengths
    return _ragged_copy_indices(dest_base, starts, lengths)[1]


def _iter_padded_chunks(budget: int, dim: int, q_n: np.ndarray, g_width: np.ndarray):
    """Yield ``(pos, end, q_pad, w_pad)`` mega-batch chunks over groups.

    Groups arrive sorted by total partner width; a chunk greedily absorbs
    groups while the padded ``(rows, q_pad, w_pad, dim)`` difference volume
    stays within ``budget`` (always at least one group per chunk).  Chunk
    boundaries never affect results or work counters -- each group's block
    is self-contained and the counters are exact integer sums -- so kernel
    tiers are free to choose different budgets.
    """
    n_groups = int(q_n.size)
    pos = 0
    while pos < n_groups:
        q_pad = int(q_n[pos])
        w_pad = int(g_width[pos])
        end = pos + 1
        while end < n_groups:
            q_next = max(q_pad, int(q_n[end]))
            w_next = max(w_pad, int(g_width[end]))
            if (end - pos + 1) * q_next * w_next * dim > budget:
                break
            q_pad, w_pad = q_next, w_next
            end += 1
        yield pos, end, q_pad, w_pad
        pos = end


@dataclass(frozen=True)
class KDTreeArrays:
    """Structure-of-arrays representation of a bulk-loaded kd-tree.

    The whole tree is nine contiguous numpy arrays: per-node split
    dimensions and values, child links, the ``[start, stop)`` bounds of each
    node's slice of the permutation array, the permutation of point
    indices itself, and the per-node bounding boxes the dual-tree engine
    prunes with.  Node ``0`` is the root; children are stored in preorder
    (a node is allocated before its left subtree, which precedes its right
    subtree).  Leaves have ``left == right == -1`` and ``split_dim == -1``.

    Because the representation is plain arrays it can be placed in (or viewed
    from) a :mod:`multiprocessing.shared_memory` segment and reattached in a
    worker process with :meth:`KDTree.from_arrays` -- no pickling, no rebuild,
    zero copies.  The batch query kernels operate on these arrays directly.
    """

    split_dim: np.ndarray  #: per-node split dimension (``-1`` for leaves)
    split_val: np.ndarray  #: per-node split coordinate value
    left: np.ndarray  #: left child node id (``-1`` for leaves)
    right: np.ndarray  #: right child node id (``-1`` for leaves)
    start: np.ndarray  #: node bounds: first position in ``indices``
    stop: np.ndarray  #: node bounds: one past the last position in ``indices``
    indices: np.ndarray  #: permutation of point indices, leaf buckets contiguous
    bbox_min: np.ndarray  #: per-node coordinate-wise minimum, shape ``(nodes, d)``
    bbox_max: np.ndarray  #: per-node coordinate-wise maximum, shape ``(nodes, d)``
    #: Optional per-node maximum of an attached per-point density array (see
    #: :meth:`KDTree.attach_density_bounds`); the dependency-join engine
    #: prunes whole subtrees with no denser points through this aggregate.
    #: ``None`` until a density array is attached.
    rho_max: np.ndarray | None = None

    @property
    def node_count(self) -> int:
        """Total number of tree nodes (internal + leaves)."""
        return int(self.split_dim.shape[0])

    @property
    def nbytes(self) -> int:
        """Total byte size of the stored arrays."""
        return int(
            sum(
                getattr(self, f.name).nbytes
                for f in fields(self)
                if getattr(self, f.name) is not None
            )
        )

    def to_mapping(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Return the arrays as a flat ``{prefix + field: array}`` mapping.

        Optional fields that are ``None`` (an unattached ``rho_max``) are
        omitted, so mappings round-trip through :meth:`from_mapping`.
        """
        return {
            prefix + f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) is not None
        }

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[str, np.ndarray], prefix: str = ""
    ) -> "KDTreeArrays":
        """Rebuild the structure from a mapping produced by :meth:`to_mapping`."""
        kwargs = {}
        for f in fields(cls):
            key = prefix + f.name
            if key in mapping:
                kwargs[f.name] = mapping[key]
            elif f.name == "rho_max":
                kwargs[f.name] = None
            else:
                raise KeyError(f"tree mapping is missing required array {key!r}")
        return cls(**kwargs)

    def validate(self, points: np.ndarray, leaf_size: int) -> None:
        """Check the structural invariants of the flattened tree.

        Raises ``ValueError`` on the first violated invariant.  Used by the
        construction tests and available for debugging attached shared-memory
        views.
        """
        n, dim = points.shape
        if self.node_count < 1:
            raise ValueError("tree must have at least one node")
        if self.rho_max is not None and self.rho_max.shape != (self.node_count,):
            raise ValueError("rho_max must hold one value per node")
        if not np.array_equal(np.sort(self.indices), np.arange(n)):
            raise ValueError("indices is not a permutation of arange(n)")
        if int(self.start[0]) != 0 or int(self.stop[0]) != n:
            raise ValueError("root node does not cover [0, n)")
        visited = 0
        stack = [0]
        while stack:
            node = stack.pop()
            visited += 1
            lo, hi = int(self.start[node]), int(self.stop[node])
            if not 0 <= lo < hi <= n:
                raise ValueError(f"node {node} has invalid bounds [{lo}, {hi})")
            node_coords = points[self.indices[lo:hi]]
            if not np.array_equal(
                self.bbox_min[node], node_coords.min(axis=0)
            ) or not np.array_equal(self.bbox_max[node], node_coords.max(axis=0)):
                raise ValueError(f"node {node} has an incorrect bounding box")
            if int(self.left[node]) == _NO_CHILD:
                if int(self.right[node]) != _NO_CHILD:
                    raise ValueError(f"leaf {node} has a right child")
                if int(self.split_dim[node]) != -1:
                    raise ValueError(f"leaf {node} has a split dimension")
                coords = points[self.indices[lo:hi]]
                if hi - lo > leaf_size and np.any(
                    coords.max(axis=0) != coords.min(axis=0)
                ):
                    raise ValueError(
                        f"leaf {node} exceeds leaf_size without zero spread"
                    )
                continue
            left, right = int(self.left[node]), int(self.right[node])
            axis = int(self.split_dim[node])
            if not 0 <= axis < dim:
                raise ValueError(f"node {node} has invalid split dimension {axis}")
            for child in (left, right):
                if not 0 <= child < self.node_count:
                    raise ValueError(f"node {node} has out-of-range child {child}")
            if int(self.start[left]) != lo or int(self.stop[right]) != hi:
                raise ValueError(f"children of node {node} do not cover its bounds")
            if int(self.stop[left]) != int(self.start[right]):
                raise ValueError(f"children of node {node} are not contiguous")
            value = float(self.split_val[node])
            left_coords = points[self.indices[lo : int(self.stop[left])], axis]
            right_coords = points[self.indices[int(self.start[right]) : hi], axis]
            if left_coords.size == 0 or right_coords.size == 0:
                raise ValueError(f"node {node} has an empty child")
            if float(left_coords.max()) > value or float(right_coords.min()) < value:
                raise ValueError(f"node {node} violates the split-value invariant")
            stack.append(left)
            stack.append(right)
        if visited != self.node_count:
            raise ValueError(
                f"reachable nodes ({visited}) != node_count ({self.node_count})"
            )


def _build_tree_arrays(points: np.ndarray, leaf_size: int) -> KDTreeArrays:
    """Bulk-load the flattened kd-tree over ``points``.

    Nodes are allocated in preorder into preallocated arrays (a tree over
    ``n`` points has at most ``2n - 1`` nodes since every split produces two
    non-empty sides), then trimmed to the actual node count.
    """
    n = points.shape[0]
    capacity = max(1, 2 * n)
    split_dim = np.full(capacity, -1, dtype=np.intp)
    split_val = np.zeros(capacity, dtype=points.dtype)
    left = np.full(capacity, _NO_CHILD, dtype=np.intp)
    right = np.full(capacity, _NO_CHILD, dtype=np.intp)
    start = np.zeros(capacity, dtype=np.intp)
    stop = np.zeros(capacity, dtype=np.intp)
    indices = np.arange(n, dtype=np.intp)

    n_nodes = 0

    def build(lo: int, hi: int) -> int:
        nonlocal n_nodes
        node = n_nodes
        n_nodes += 1
        count = hi - lo
        if count <= leaf_size:
            start[node] = lo
            stop[node] = hi
            return node

        subset = indices[lo:hi]
        coords = points[subset]
        spreads = coords.max(axis=0) - coords.min(axis=0)
        dim = int(np.argmax(spreads))
        if spreads[dim] == 0.0:
            # All points identical along every axis: keep them in one leaf to
            # avoid infinite recursion on duplicate-heavy data.
            start[node] = lo
            stop[node] = hi
            return node

        mid = count // 2
        order = np.argpartition(coords[:, dim], mid)
        indices[lo:hi] = subset[order]
        split_value = float(points[indices[lo + mid], dim])

        split_dim[node] = dim
        split_val[node] = split_value
        start[node] = lo
        stop[node] = hi
        left[node] = build(lo, lo + mid)
        right[node] = build(lo + mid, hi)
        return node

    build(0, n)

    # Bounding boxes, bottom-up: leaves take the coordinate-wise extrema of
    # their (now final) bucket slice; internal nodes merge their children.
    # Preorder allocation guarantees children have larger ids than their
    # parent, so one reverse sweep suffices.
    dim = points.shape[1]
    bbox_min = np.empty((n_nodes, dim), dtype=points.dtype)
    bbox_max = np.empty((n_nodes, dim), dtype=points.dtype)
    for node in range(n_nodes - 1, -1, -1):
        child_left = left[node]
        if child_left == _NO_CHILD:
            coords = points[indices[start[node] : stop[node]]]
            bbox_min[node] = coords.min(axis=0)
            bbox_max[node] = coords.max(axis=0)
        else:
            child_right = right[node]
            np.minimum(bbox_min[child_left], bbox_min[child_right], out=bbox_min[node])
            np.maximum(bbox_max[child_left], bbox_max[child_right], out=bbox_max[node])

    return KDTreeArrays(
        split_dim=split_dim[:n_nodes].copy(),
        split_val=split_val[:n_nodes].copy(),
        left=left[:n_nodes].copy(),
        right=right[:n_nodes].copy(),
        start=start[:n_nodes].copy(),
        stop=stop[:n_nodes].copy(),
        indices=indices,
        bbox_min=bbox_min,
        bbox_max=bbox_max,
    )


class KDTree:
    """Static bulk-loaded kd-tree with bucket leaves.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``; a float64 copy is stored internally.
    leaf_size:
        Maximum number of points stored in a leaf bucket.  Larger leaves mean
        fewer Python-level node visits and more vectorised work per leaf; the
        default of 32 is a good compromise for the 2--8 dimensional data used
        throughout the paper.
    dtype:
        Point-storage dtype, ``"float64"`` (default) or ``"float32"``.  With
        ``"float32"`` the point matrix, split values and bounding boxes take
        half the memory and cache traffic, and every engine computes
        distances in float32 (results remain bit-for-bit consistent between
        the scalar, batch and dual engines at either precision).
    kernel:
        Kernel tier executing the blocked distance kernels:
        ``"numpy"`` (always available), ``"numba"`` / ``"cupy"`` (optional,
        compiled/device implementations of the same ABI) or ``"auto"``
        (numba when installed, else numpy).  ``None`` (default) reads the
        ``REPRO_KERNEL`` environment variable.  Every tier produces
        bit-identical results and work counters (see :mod:`repro.kernels`
        and ``docs/kernels.md``); the choice only affects speed.

    Notes
    -----
    The classic analysis gives ``O(n^{1-1/d} + k)`` time for a range search
    reporting ``k`` points [Toth et al., Handbook of Discrete and Computational
    Geometry], which is the bound the paper's Lemma 1 builds on.
    """

    def __init__(
        self,
        points,
        leaf_size: int = 32,
        counter: WorkCounter | None = None,
        *,
        dtype: str = "float64",
        kernel: str | None = None,
    ):
        self._source_points = check_points(points, name="points")
        self._dtype = check_storage_dtype(dtype)
        self._points = np.ascontiguousarray(self._source_points, dtype=self._dtype)
        self._leaf_size = check_positive_int(leaf_size, "leaf_size")
        self._kernel_name = resolve_kernel(kernel)
        self._kernel = get_kernel(self._kernel_name)
        self._n, self._dim = self._points.shape
        #: Work counter accumulating distance evaluations and node visits
        #: performed by queries on this tree.
        self.counter = counter if counter is not None else WorkCounter()
        self._arrays = _build_tree_arrays(self._points, self._leaf_size)
        self._bind_arrays()

    def _bind_arrays(self) -> None:
        """Expose the structure-of-arrays fields under the query-code aliases."""
        arrays = self._arrays
        self._split_dim_arr = arrays.split_dim
        self._split_val_arr = arrays.split_val
        self._left_arr = arrays.left
        self._right_arr = arrays.right
        self._start_arr = arrays.start
        self._stop_arr = arrays.stop
        self._indices = arrays.indices
        self._bbox_min_arr = arrays.bbox_min
        self._bbox_max_arr = arrays.bbox_max
        self._root = 0
        # Leaf-contiguous point copy of the dual-tree engine; materialised
        # once per tree, on first use (see points_ordered).
        self._ordered_cache: np.ndarray | None = None
        self._terminal_cache: np.ndarray | None = None
        # Float64 pruning views of the nearest-denser join (identical to the
        # storage arrays for float64 trees; see _pruning_ordered/_pruning_bbox).
        self._ordered64_cache: np.ndarray | None = None
        self._bbox64_cache: tuple[np.ndarray, np.ndarray] | None = None
        # One-slot caches of the last seen density arrays and their per-node
        # aggregates (keyed by array identity): data-side maxima
        # (_density_bounds) and query-side minima (_query_density_bounds).
        self._density_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._q_density_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_arrays(
        cls,
        points,
        arrays: KDTreeArrays,
        *,
        leaf_size: int = 32,
        counter: WorkCounter | None = None,
        validate: bool = False,
        kernel: str | None = None,
    ) -> "KDTree":
        """Wrap an existing flattened tree without rebuilding it.

        ``points`` and ``arrays`` are adopted as-is (typically zero-copy views
        over a shared-memory segment attached by a worker process); no data is
        copied and no O(n log n) build runs.  The storage dtype is inferred
        from ``arrays`` (its split values carry the build dtype); ``points``
        of a different dtype are cast once, which reproduces the exact storage
        a fresh build with that dtype would hold.  Pass ``validate=True`` to
        check the structural invariants of ``arrays`` first.
        """
        source = np.asarray(points, dtype=np.float64)
        if source.ndim != 2:
            raise ValueError("points must be a 2-D array")
        tree = cls.__new__(cls)
        tree._dtype = check_storage_dtype(arrays.split_val.dtype.name)
        tree._source_points = source
        tree._points = np.ascontiguousarray(source, dtype=tree._dtype)
        tree._leaf_size = check_positive_int(leaf_size, "leaf_size")
        tree._kernel_name = resolve_kernel(kernel)
        tree._kernel = get_kernel(tree._kernel_name)
        tree._n, tree._dim = tree._points.shape
        tree.counter = counter if counter is not None else WorkCounter()
        tree._arrays = arrays
        if validate:
            arrays.validate(tree._points, tree._leaf_size)
        tree._bind_arrays()
        return tree

    # ------------------------------------------------------------- properties

    @property
    def arrays(self) -> KDTreeArrays:
        """The flattened structure-of-arrays form of the tree."""
        return self._arrays

    @property
    def points(self) -> np.ndarray:
        """The indexed point set in storage dtype (read-only view)."""
        return self._points

    @property
    def source_points(self) -> np.ndarray:
        """The float64 point set the tree was built from.

        Identical to :attr:`points` for ``dtype="float64"`` trees; for
        ``float32`` trees this is the original full-precision matrix (the
        process backend shares it so worker-side scan kernels operating on
        raw coordinates stay bit-for-bit equal to the in-process ones).
        """
        return self._source_points

    @property
    def dtype_name(self) -> str:
        """Name of the point-storage dtype (``"float64"`` or ``"float32"``)."""
        return self._dtype.name

    @property
    def kernel_name(self) -> str:
        """Name of the *effective* kernel tier executing the blocked kernels.

        All tiers compute bit-identical results (see :mod:`repro.kernels`),
        so this only matters for performance accounting; ``"auto"`` requests
        resolve to a concrete tier at construction.
        """
        return self._kernel.name

    @property
    def points_ordered(self) -> np.ndarray:
        """The points permuted into leaf-traversal order (cache-aware layout).

        ``points_ordered[k] == points[arrays.indices[k]]``, so every tree
        node's bucket is one *contiguous* slice ``[start, stop)`` of this
        array.  The dual-tree kernels read their blocks straight out of these
        slices -- sequential cache lines, no permutation gather.  Materialised
        once per tree on first use; results are inverse-permuted back to the
        caller's point order at the API edge.
        """
        if self._ordered_cache is None:
            self._ordered_cache = np.ascontiguousarray(self._points[self._indices])
        return self._ordered_cache

    @property
    def size(self) -> int:
        """Number of indexed points."""
        return self._n

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self._dim

    @property
    def leaf_size(self) -> int:
        """Maximum bucket size of a leaf."""
        return self._leaf_size

    @property
    def node_count(self) -> int:
        """Total number of tree nodes (internal + leaves)."""
        return self._arrays.node_count

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the index structure in bytes.

        Counts the flattened node arrays (including bounding boxes), the
        permutation array, and -- once materialised by a dual-tree query --
        the leaf-ordered point copy, but not the point matrix itself (which
        is shared with the caller).
        """
        total = self._arrays.nbytes
        if self._ordered_cache is not None:
            total += self._ordered_cache.nbytes
        return total

    # ---------------------------------------------------------------- queries

    def _is_leaf(self, node: int) -> bool:
        return self._left_arr[node] == _NO_CHILD

    def _check_query(self, query) -> np.ndarray:
        """Validate one query point and cast it to the storage dtype."""
        query = np.asarray(query, dtype=self._dtype).reshape(-1)
        if query.shape[0] != self._dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, expected {self._dim}"
            )
        return query

    def range_search(self, query, radius: float, strict: bool = True) -> np.ndarray:
        """Return the indices of all points within ``radius`` of ``query``.

        Parameters
        ----------
        query:
            Query point of shape ``(d,)``.
        radius:
            Search radius (must be positive).
        strict:
            When true (the default, matching Definition 1 of the paper) report
            points with ``dist < radius``; otherwise ``dist <= radius``.
        """
        query = self._check_query(query)
        radius = check_positive(radius, "radius")
        radius_sq = radius * radius

        hits: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if self._is_leaf(node):
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size == 0:
                    continue
                self.counter.add("distance_calcs", idx.size)
                d_sq = point_to_points_sq(query, self._points[idx])
                mask = d_sq < radius_sq if strict else d_sq <= radius_sq
                if mask.any():
                    hits.append(idx[mask])
                continue
            dim = self._split_dim_arr[node]
            diff = query[dim] - self._split_val_arr[node]
            near, far = (
                (self._left_arr[node], self._right_arr[node])
                if diff < 0.0
                else (self._right_arr[node], self._left_arr[node])
            )
            stack.append(near)
            if diff * diff <= radius_sq:
                stack.append(far)

        if not hits:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(hits)

    def range_count(self, query, radius: float, strict: bool = True) -> int:
        """Return the number of points within ``radius`` of ``query``.

        Equivalent to ``len(range_search(...))`` but avoids materialising the
        index list; this is the primitive used for local-density computation.
        """
        query = self._check_query(query)
        radius = check_positive(radius, "radius")
        radius_sq = radius * radius

        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if self._is_leaf(node):
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size == 0:
                    continue
                self.counter.add("distance_calcs", idx.size)
                d_sq = point_to_points_sq(query, self._points[idx])
                if strict:
                    count += int(np.count_nonzero(d_sq < radius_sq))
                else:
                    count += int(np.count_nonzero(d_sq <= radius_sq))
                continue
            dim = self._split_dim_arr[node]
            diff = query[dim] - self._split_val_arr[node]
            near, far = (
                (self._left_arr[node], self._right_arr[node])
                if diff < 0.0
                else (self._right_arr[node], self._left_arr[node])
            )
            stack.append(near)
            if diff * diff <= radius_sq:
                stack.append(far)
        return count

    def nearest_neighbor(
        self,
        query,
        *,
        exclude: Optional[int] = None,
        mask: Optional[np.ndarray] = None,
    ) -> tuple[int, float]:
        """Return ``(index, distance)`` of the nearest indexed point to ``query``.

        Parameters
        ----------
        query:
            Query point of shape ``(d,)``.
        exclude:
            Optional index to ignore (typically the query point itself when it
            is part of the indexed set).
        mask:
            Optional boolean array of length ``n``; only points with
            ``mask[i] == True`` are eligible.  Used by the Approx-DPC exact
            fallback, which restricts the search to points with higher local
            density.

        Returns
        -------
        tuple
            ``(index, distance)``; ``index`` is ``-1`` and ``distance`` is
            ``inf`` when no eligible point exists.
        """
        query = self._check_query(query)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape[0] != self._n:
                raise ValueError("mask must have one entry per indexed point")

        best_idx = -1
        best_sq = np.inf
        # Depth-first traversal ordered by the near child first; prune subtrees
        # whose splitting plane is strictly farther than the current best
        # distance.  The non-strict comparison keeps equal-distance candidates
        # reachable so the smallest-index tie-break is traversal-order
        # independent (and therefore identical to ``nearest_neighbor_batch``).
        stack: list[tuple[int, float]] = [(self._root, 0.0)]
        while stack:
            node, plane_sq = stack.pop()
            if plane_sq > best_sq:
                continue
            if self._is_leaf(node):
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size == 0:
                    continue
                self.counter.add("distance_calcs", idx.size)
                d_sq = point_to_points_sq(query, self._points[idx])
                if exclude is not None:
                    d_sq = np.where(idx == exclude, np.inf, d_sq)
                if mask is not None:
                    d_sq = np.where(mask[idx], d_sq, np.inf)
                pos = int(np.lexsort((idx, d_sq))[0])
                if d_sq[pos] < best_sq or (
                    d_sq[pos] == best_sq and int(idx[pos]) < best_idx
                ):
                    best_sq = float(d_sq[pos])
                    best_idx = int(idx[pos])
                continue
            dim = self._split_dim_arr[node]
            diff = query[dim] - self._split_val_arr[node]
            near, far = (
                (self._left_arr[node], self._right_arr[node])
                if diff < 0.0
                else (self._right_arr[node], self._left_arr[node])
            )
            # Push the far child first so the near child is explored first.
            stack.append((far, diff * diff))
            stack.append((near, 0.0))
        return best_idx, float(np.sqrt(best_sq)) if np.isfinite(best_sq) else np.inf

    def knn(self, query, k: int, *, exclude: Optional[int] = None) -> tuple[np.ndarray, np.ndarray]:
        """Return the ``k`` nearest neighbours of ``query``.

        Returns
        -------
        tuple
            ``(indices, distances)`` sorted by increasing distance.  Fewer than
            ``k`` entries are returned when the tree holds fewer eligible
            points.
        """
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        k = check_positive_int(k, "k")
        if query.shape[0] != self._dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, expected {self._dim}"
            )

        # Collect candidate (distance, index) pairs with a simple bounded list;
        # k is small in every caller (the dependency fallback uses k=1..8).
        best_sq = np.full(k, np.inf)
        best_idx = np.full(k, -1, dtype=np.intp)

        stack: list[tuple[int, float]] = [(self._root, 0.0)]
        while stack:
            node, plane_sq = stack.pop()
            if plane_sq > best_sq[-1]:
                continue
            if self._is_leaf(node):
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size == 0:
                    continue
                self.counter.add("distance_calcs", idx.size)
                d_sq = point_to_points_sq(query, self._points[idx])
                if exclude is not None:
                    d_sq = np.where(idx == exclude, np.inf, d_sq)
                merged_sq = np.concatenate([best_sq, d_sq])
                merged_idx = np.concatenate([best_idx, idx])
                # Lexicographic (distance, index) order: exact distance ties
                # resolve to the smallest index regardless of traversal order,
                # matching knn_batch bit for bit.
                order = np.lexsort((merged_idx, merged_sq))[:k]
                best_sq = merged_sq[order]
                best_idx = merged_idx[order]
                continue
            dim = self._split_dim_arr[node]
            diff = query[dim] - self._split_val_arr[node]
            near, far = (
                (self._left_arr[node], self._right_arr[node])
                if diff < 0.0
                else (self._right_arr[node], self._left_arr[node])
            )
            stack.append((far, diff * diff))
            stack.append((near, 0.0))

        valid = best_idx >= 0
        return best_idx[valid], np.sqrt(best_sq[valid])

    # ---------------------------------------------------------- batch queries

    def _check_query_batch(self, queries) -> np.ndarray:
        """Validate a ``(q, d)`` query batch (a bare ``(d,)`` vector is promoted).

        Queries are cast to the storage dtype so every engine computes each
        pair distance with identical arithmetic.
        """
        queries = np.asarray(queries, dtype=self._dtype)
        if queries.ndim == 1 and queries.shape[0] == self._dim:
            queries = queries.reshape(1, -1)
        if queries.size == 0:
            return queries.reshape(0, self._dim)
        if queries.ndim != 2 or queries.shape[1] != self._dim:
            raise ValueError(
                f"queries must have shape (q, {self._dim}), got {queries.shape}"
            )
        return queries

    def _check_radius_sq_batch(self, radius, n_queries: int) -> np.ndarray:
        """Return per-query *squared* radii from a scalar or length-q array.

        The squared radii are cast to the storage dtype: the scalar methods
        compare float32 distances against a Python-float ``radius_sq``,
        which NumPy's weak scalar promotion evaluates as a float32
        comparison, so the batch engine must round the bound identically or
        the engines would disagree within one ulp of the radius.
        """
        radius_arr = np.asarray(radius, dtype=np.float64)
        if radius_arr.ndim == 0:
            radius_value = check_positive(float(radius_arr), "radius")
            radius_arr = np.full(n_queries, radius_value)
        else:
            radius_arr = radius_arr.reshape(-1)
            if radius_arr.shape[0] != n_queries:
                raise ValueError(
                    f"radius must be a scalar or have one entry per query "
                    f"({n_queries}), got {radius_arr.shape[0]}"
                )
            if radius_arr.size and float(radius_arr.min()) <= 0.0:
                raise ValueError("every radius must be positive")
        radius_sq = radius_arr * radius_arr
        if self._dtype != np.float64:
            radius_sq = radius_sq.astype(self._dtype)
        return radius_sq

    def _leaf_distances_sq(self, queries_sub: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Squared distances from every query in the subset to every leaf point.

        Dispatched through the tree's kernel tier; every tier uses the same
        canonical sequential accumulation as the scalar
        :func:`repro.utils.distance.point_to_points_sq`, so every pair
        produces the bit-identical squared distance in both code paths.
        """
        return self._kernel.pair_distances_sq(queries_sub, self._points[idx])

    def _range_traverse_batch(self, queries, radius_sq, on_leaf) -> None:
        """Shared frontier traversal of the batch range queries.

        ``on_leaf(qidx, idx, hits)`` receives the query subset that reached the
        leaf, the leaf's point indices and the boolean hit matrix.  The child
        routing replicates the scalar rule per query: the near side is always
        visited and the far side only when the splitting plane is within the
        query radius, so the set of visited ``(node, query)`` pairs -- and the
        recorded distance-calculation counts -- match the scalar methods
        exactly.
        """
        stack: list[tuple[int, np.ndarray]] = [
            (self._root, np.arange(queries.shape[0], dtype=np.intp))
        ]
        while stack:
            node, qidx = stack.pop()
            if self._is_leaf(node):
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size == 0:
                    continue
                self.counter.add("distance_calcs", float(qidx.size) * float(idx.size))
                d_sq = self._leaf_distances_sq(queries[qidx], idx)
                on_leaf(qidx, idx, d_sq)
                continue
            dim = self._split_dim_arr[node]
            diff = queries[qidx, dim] - self._split_val_arr[node]
            within = diff * diff <= radius_sq[qidx]
            left_q = qidx[(diff < 0.0) | within]
            right_q = qidx[(diff >= 0.0) | within]
            if left_q.size:
                stack.append((self._left_arr[node], left_q))
            if right_q.size:
                stack.append((self._right_arr[node], right_q))

    def range_count_batch(self, queries, radius, strict: bool = True) -> np.ndarray:
        """Vectorised batch counterpart of :meth:`range_count`.

        Parameters
        ----------
        queries:
            Array of shape ``(q, d)``; an empty batch returns an empty array.
        radius:
            Scalar radius shared by every query, or an array of ``q`` per-query
            radii (Approx-DPC's joint range search uses per-cell radii).
        strict:
            Count ``dist < radius`` when true (Definition 1), else
            ``dist <= radius``.

        Returns
        -------
        numpy.ndarray
            Integer counts, one per query, identical to calling
            :meth:`range_count` per point.
        """
        queries = self._check_query_batch(queries)
        n_queries = queries.shape[0]
        radius_sq = self._check_radius_sq_batch(radius, n_queries)
        counts = np.zeros(n_queries, dtype=np.intp)
        if n_queries == 0:
            return counts

        def on_leaf(qidx: np.ndarray, idx: np.ndarray, d_sq: np.ndarray) -> None:
            bound = radius_sq[qidx, None]
            hits = d_sq < bound if strict else d_sq <= bound
            counts[qidx] += hits.sum(axis=1)

        self._range_traverse_batch(queries, radius_sq, on_leaf)
        return counts

    def range_search_batch(
        self, queries, radius, strict: bool = True
    ) -> list[np.ndarray]:
        """Vectorised batch counterpart of :meth:`range_search`.

        Returns one index array per query holding the same point set as the
        scalar method, but sorted in ascending index order (the scalar method
        reports hits in traversal order, which is an implementation detail).
        ``radius`` may be a scalar or an array of per-query radii.
        """
        queries = self._check_query_batch(queries)
        n_queries = queries.shape[0]
        radius_sq = self._check_radius_sq_batch(radius, n_queries)
        results: list[np.ndarray] = [
            np.empty(0, dtype=np.intp) for _ in range(n_queries)
        ]
        if n_queries == 0:
            return results
        hit_queries: list[np.ndarray] = []
        hit_points: list[np.ndarray] = []

        def on_leaf(qidx: np.ndarray, idx: np.ndarray, d_sq: np.ndarray) -> None:
            bound = radius_sq[qidx, None]
            hits = d_sq < bound if strict else d_sq <= bound
            rows, cols = np.nonzero(hits)
            if rows.size:
                hit_queries.append(qidx[rows])
                hit_points.append(idx[cols])

        self._range_traverse_batch(queries, radius_sq, on_leaf)
        if not hit_queries:
            return results
        all_queries = np.concatenate(hit_queries)
        all_points = np.concatenate(hit_points)
        order = np.argsort(all_queries, kind="stable")
        all_queries = all_queries[order]
        all_points = all_points[order]
        boundaries = np.searchsorted(all_queries, np.arange(n_queries + 1))
        for query in range(n_queries):
            start, stop = boundaries[query], boundaries[query + 1]
            if stop > start:
                results[query] = np.sort(all_points[start:stop])
        return results

    def range_profile_batch(
        self, queries, radius, strict: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-query sorted neighbor-distance profiles (CSR layout).

        For every query this collects the *squared* distances (and indices) of
        all indexed points within ``radius``, using the exact hit predicate
        and canonical blocked-kernel arithmetic of :meth:`range_count_batch`.
        Consequently, for any radius ``r <= radius``, the number of profile
        entries below the storage-dtype bound ``r*r`` equals
        ``range_count_batch([q], r)`` bit for bit -- this is the invariant the
        re-cluster index (:mod:`repro.core.recluster`) is built on.

        Returns
        -------
        tuple
            ``(values, ids, indptr)``: ``values`` are the squared distances in
            the tree's storage dtype, ``ids`` the matching point indices, and
            ``indptr`` the ``(q + 1,)`` row offsets (row ``i`` spans
            ``values[indptr[i]:indptr[i + 1]]``).  Rows are sorted by
            ``(squared distance, point index)`` ascending, so each row's
            values are non-decreasing and exact distance ties keep the global
            index order (the lexicographic tie-break of the dependency join).
        """
        queries = self._check_query_batch(queries)
        n_queries = queries.shape[0]
        radius_sq = self._check_radius_sq_batch(radius, n_queries)
        indptr = np.zeros(n_queries + 1, dtype=np.int64)
        if n_queries == 0:
            return np.empty(0, dtype=self._dtype), np.empty(0, dtype=np.intp), indptr
        hit_queries: list[np.ndarray] = []
        hit_points: list[np.ndarray] = []
        hit_values: list[np.ndarray] = []

        def on_leaf(qidx: np.ndarray, idx: np.ndarray, d_sq: np.ndarray) -> None:
            bound = radius_sq[qidx, None]
            hits = d_sq < bound if strict else d_sq <= bound
            rows, cols = np.nonzero(hits)
            if rows.size:
                hit_queries.append(qidx[rows])
                hit_points.append(idx[cols])
                hit_values.append(d_sq[rows, cols])

        self._range_traverse_batch(queries, radius_sq, on_leaf)
        if not hit_queries:
            return np.empty(0, dtype=self._dtype), np.empty(0, dtype=np.intp), indptr
        all_queries = np.concatenate(hit_queries)
        all_points = np.concatenate(hit_points)
        all_values = np.concatenate(hit_values)
        order = np.lexsort((all_points, all_values, all_queries))
        indptr[1:] = np.cumsum(np.bincount(all_queries, minlength=n_queries))
        return all_values[order], all_points[order], indptr

    def _knn_batch_impl(
        self,
        queries: np.ndarray,
        k: int,
        exclude: Optional[np.ndarray],
        mask: Optional[np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Frontier-based batch k-nearest-neighbour search.

        Returns ``(indices, squared_distances)`` of shape ``(q, k)`` padded
        with ``-1`` / ``inf``.  Exact distance ties are broken by the smallest
        index, which (together with the non-strict pruning test) makes the
        result independent of traversal order and therefore identical to the
        scalar methods.
        """
        n_queries = queries.shape[0]
        best_sq = np.full((n_queries, k), np.inf)
        best_idx = np.full((n_queries, k), -1, dtype=np.intp)
        if n_queries == 0:
            return best_idx, best_sq

        # Leaf node each query was routed to by the seeding pass; refinement
        # skips that (query, leaf) pair so no leaf is merged twice per query.
        home_leaf = np.full(n_queries, -1, dtype=np.intp)

        def merge_leaf(qidx: np.ndarray, idx: np.ndarray, node: int = -1) -> None:
            """Fold one leaf's distance block into the per-query best arrays."""
            if node >= 0:
                fresh = home_leaf[qidx] != node
                if not fresh.all():
                    qidx = qidx[fresh]
                    if qidx.size == 0:
                        return
            self.counter.add("distance_calcs", float(qidx.size) * float(idx.size))
            d_sq = self._leaf_distances_sq(queries[qidx], idx)
            if exclude is not None:
                d_sq = np.where(idx[None, :] == exclude[qidx][:, None], np.inf, d_sq)
            if mask is not None:
                d_sq = np.where(mask[idx][None, :], d_sq, np.inf)
            # Merge only the rows this leaf can actually improve (or tie,
            # which may still lower the winning index).
            improving = d_sq.min(axis=1) <= best_sq[qidx, -1]
            if not improving.any():
                return
            rows = qidx[improving]
            d_sq = d_sq[improving]
            merged_sq = np.concatenate([best_sq[rows], d_sq], axis=1)
            merged_idx = np.concatenate(
                [best_idx[rows], np.broadcast_to(idx, (rows.size, idx.size))],
                axis=1,
            )
            # Lexicographic (distance, index) order: exact distance ties
            # resolve to the smallest index regardless of traversal order,
            # matching the scalar methods bit for bit.
            order = np.lexsort((merged_idx, merged_sq), axis=-1)[:, :k]
            best_sq[rows] = np.take_along_axis(merged_sq, order, axis=1)
            best_idx[rows] = np.take_along_axis(merged_idx, order, axis=1)

        # Seeding pass: route every query to its home leaf (near side only,
        # so the subsets partition and each node is visited at most once) and
        # initialise the best arrays from that leaf's bucket.  This tightens
        # the pruning bounds before the refinement pass starts, which keeps
        # the far-side frontier small; it only ever lowers bounds, so the
        # refinement pass still visits every node the scalar search would.
        seed_stack: list[tuple[int, np.ndarray]] = [
            (self._root, np.arange(n_queries, dtype=np.intp))
        ]
        while seed_stack:
            node, qidx = seed_stack.pop()
            if self._is_leaf(node):
                home_leaf[qidx] = node
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size:
                    merge_leaf(qidx, idx)
                continue
            diff = queries[qidx, self._split_dim_arr[node]] - self._split_val_arr[node]
            on_left = diff < 0.0
            if on_left.any():
                seed_stack.append((self._left_arr[node], qidx[on_left]))
            if not on_left.all():
                seed_stack.append((self._right_arr[node], qidx[~on_left]))

        stack: list[tuple[int, np.ndarray, np.ndarray]] = [
            (self._root, np.arange(n_queries, dtype=np.intp), np.zeros(n_queries))
        ]
        while stack:
            node, qidx, plane_sq = stack.pop()
            # Bounds may have tightened since this entry was pushed; the
            # non-strict comparison keeps equal-distance candidates reachable
            # so the smallest-index tie-break is traversal-order independent.
            alive = plane_sq <= best_sq[qidx, -1]
            if not alive.all():
                qidx = qidx[alive]
                plane_sq = plane_sq[alive]
            if qidx.size == 0:
                continue
            if self._is_leaf(node):
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size:
                    merge_leaf(qidx, idx, node)
                continue
            dim = self._split_dim_arr[node]
            diff = queries[qidx, dim] - self._split_val_arr[node]
            diff_sq = diff * diff
            bound = best_sq[qidx, -1]
            on_left = diff < 0.0
            left_take = on_left | (diff_sq <= bound)
            right_take = ~on_left | (diff_sq <= bound)
            # Pop order is LIFO: push the child that is the far side for the
            # majority of queries first, so most queries explore their near
            # side first and tighten the pruning bound early.
            left_first = np.count_nonzero(on_left) * 2 >= qidx.size
            children = (
                (
                    (self._right_arr[node], right_take, np.where(on_left, diff_sq, 0.0)),
                    (self._left_arr[node], left_take, np.where(on_left, 0.0, diff_sq)),
                )
                if left_first
                else (
                    (self._left_arr[node], left_take, np.where(on_left, 0.0, diff_sq)),
                    (self._right_arr[node], right_take, np.where(on_left, diff_sq, 0.0)),
                )
            )
            for child, take, child_plane in children:
                if take.all():
                    stack.append((child, qidx, child_plane))
                elif take.any():
                    stack.append((child, qidx[take], child_plane[take]))
        return best_idx, best_sq

    def knn_batch(
        self, queries, k: int, *, exclude: Optional[np.ndarray] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised batch counterpart of :meth:`knn`.

        Parameters
        ----------
        queries:
            Array of shape ``(q, d)``.
        k:
            Number of neighbours per query.
        exclude:
            Optional array of ``q`` point indices, one per query, to ignore
            (typically the query points themselves).

        Returns
        -------
        tuple
            ``(indices, distances)`` of shape ``(q, k)`` sorted by increasing
            distance per row, ties broken by the smallest index.  When a query
            has fewer than ``k`` eligible neighbours the trailing slots hold
            ``-1`` / ``inf`` (the scalar :meth:`knn` trims them instead).
        """
        queries = self._check_query_batch(queries)
        k = check_positive_int(k, "k")
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.intp).reshape(-1)
            if exclude.shape[0] != queries.shape[0]:
                raise ValueError("exclude must hold one point index per query")
        best_idx, best_sq = self._knn_batch_impl(queries, k, exclude, None)
        return best_idx, np.sqrt(best_sq)

    def nearest_neighbor_batch(
        self,
        queries,
        *,
        exclude: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised batch counterpart of :meth:`nearest_neighbor`.

        ``exclude`` is an optional array of one point index per query;
        ``mask`` is the same per-point eligibility array the scalar method
        accepts (shared by every query in the batch).  Returns ``(indices,
        distances)`` arrays of length ``q`` with ``-1`` / ``inf`` for queries
        with no eligible neighbour.
        """
        queries = self._check_query_batch(queries)
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.intp).reshape(-1)
            if exclude.shape[0] != queries.shape[0]:
                raise ValueError("exclude must hold one point index per query")
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape[0] != self._n:
                raise ValueError("mask must have one entry per indexed point")
        best_idx, best_sq = self._knn_batch_impl(queries, 1, exclude, mask)
        return best_idx[:, 0], np.sqrt(best_sq[:, 0])

    # ----------------------------------------------------- dual-tree queries

    def _check_dual_partner(self, other: "KDTree") -> None:
        """Validate that ``other`` can be joined against this tree."""
        if not isinstance(other, KDTree):
            raise TypeError("dual-tree joins require another KDTree")
        if other._dim != self._dim:
            raise ValueError(
                f"query tree has dimension {other._dim}, expected {self._dim}"
            )
        if other._dtype != self._dtype:
            raise ValueError(
                f"query tree stores {other.dtype_name} but this tree stores "
                f"{self.dtype_name}; build both with the same dtype"
            )

    @property
    def _terminal(self) -> np.ndarray:
        """Per-node flag: the dual traversal stops descending here.

        A node is terminal when it is a leaf or holds at most ``_DUAL_BLOCK``
        points; a pair of terminal nodes runs one blocked kernel over its two
        contiguous slices.
        """
        if self._terminal_cache is None:
            self._terminal_cache = (self._left_arr == _NO_CHILD) | (
                self._stop_arr - self._start_arr <= _DUAL_BLOCK
            )
        return self._terminal_cache

    def _pair_bounds_sq(
        self, other: "KDTree", a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised min/max squared box distance for node pairs ``(a, b)``.

        ``a`` indexes this tree's nodes, ``b`` indexes ``other``'s.  The
        bounds are floating-point safe against the blocked kernels: each
        per-dimension gap/span is one IEEE subtraction, squared and summed
        with the same sequential ascending-dimension reduction every kernel
        tier uses, so by monotonicity of IEEE round-to-nearest every
        computed pair distance in the block lies inside ``[min_sq, max_sq]``
        -- in float64 and float32 storage alike.
        """
        a_min = self._bbox_min_arr[a]
        a_max = self._bbox_max_arr[a]
        b_min = other._bbox_min_arr[b]
        b_max = other._bbox_max_arr[b]
        gap = np.maximum(b_min - a_max, a_min - b_max)
        np.maximum(gap, 0.0, out=gap)
        span = np.maximum(b_max - a_min, a_max - b_min)
        min_sq = squared_norms(gap)
        max_sq = squared_norms(span)
        return min_sq, max_sq

    def _self_kernel_blocks(
        self,
        kernel_a: np.ndarray,
        kernel_b: np.ndarray,
        radius_sq: float,
        strict: bool,
        counts: np.ndarray,
    ) -> None:
        """Blocked distance kernels of the self-join, grouped by query node.

        All data blocks joined against the same query node are concatenated
        (contiguous slices of :attr:`points_ordered`) and answered with one
        kernel-tier ``count_blocks`` evaluation; the column sums then credit
        each off-diagonal partner in the symmetric direction.  Per-pair
        arithmetic is unchanged by the grouping -- each pair's distances
        occupy their own columns of the group matrix.
        """
        order = np.argsort(kernel_a, kind="stable")
        ka = kernel_a[order]
        kb = kernel_b[order]
        ordered = self.points_ordered
        start, stop = self._start_arr, self._stop_arr
        dim = self._dim
        n_pairs = ka.size

        # Group structure (one group per distinct query node), fully
        # vectorised: first-pair index, pair count, total partner width.
        group_first = np.flatnonzero(np.r_[True, ka[1:] != ka[:-1]])
        pair_counts = np.diff(np.r_[group_first, n_pairs])
        q_nodes = ka[group_first]
        pair_w = stop[kb] - start[kb]
        g_width = np.add.reduceat(pair_w, group_first)
        q_lo, q_hi = start[q_nodes], stop[q_nodes]
        q_n = q_hi - q_lo

        # Reorder the groups by total partner width (tight padding within a
        # mega-batch) and lay their pairs out contiguously in that order.
        g_order = np.argsort(g_width, kind="stable")
        _, pair_src = _ragged_copy_indices(
            np.r_[0, np.cumsum(pair_counts[g_order])[:-1]],
            group_first[g_order],
            pair_counts[g_order],
        )
        kb = kb[pair_src]
        pair_w = pair_w[pair_src]
        pair_counts = pair_counts[g_order]
        q_nodes = q_nodes[g_order]
        q_lo, q_hi, q_n = q_lo[g_order], q_hi[g_order], q_n[g_order]
        g_width = g_width[g_order]
        group_first = np.r_[0, np.cumsum(pair_counts)[:-1]]
        n_groups = q_nodes.size
        pair_group = np.repeat(np.arange(n_groups, dtype=np.intp), pair_counts)
        # In-group exclusive width offset of every pair (its column base).
        pair_off = (np.cumsum(pair_w) - pair_w) - np.repeat(
            np.r_[0, np.cumsum(g_width)[:-1]], pair_counts
        )

        # Every product is an integer below 2**53, so this float sum is exact
        # and independent of chunking -- serial and process backends report
        # identical work counters.
        self.counter.add(
            "distance_calcs",
            float(np.dot(q_n.astype(np.float64), g_width.astype(np.float64))),
        )

        # Mega-batch the groups: several groups are padded (queries and data
        # alike) with +inf rows into one (groups, q, j, d) block and answered
        # by a single kernel-tier call -- bit-identical per group to an
        # unpadded evaluation (verified by the property suite) -- while the
        # padded pair distances come out inf/nan and never satisfy the
        # radius test.  Fills and credits run as ragged gathers/scatters, no
        # per-group Python.  The radius bound is pre-cast to the storage
        # dtype so every tier compares exactly as numpy's weak scalar
        # promotion does in the scalar/batch engines.
        kernel_tier = self._kernel
        radius_cmp = ordered.dtype.type(radius_sq)
        for pos, end, q_pad, w_pad in _iter_padded_chunks(
            kernel_tier.block_budget, dim, q_n, g_width
        ):
            rows = end - pos
            p0 = group_first[pos]
            p1 = group_first[end] if end < n_groups else n_pairs

            dest_q, src_q = _ragged_copy_indices(
                np.arange(rows, dtype=np.intp) * q_pad, q_lo[pos:end], q_n[pos:end]
            )
            q_block = np.full((rows * q_pad, dim), np.inf, dtype=ordered.dtype)
            q_block[dest_q] = ordered[src_q]

            dest_base = (pair_group[p0:p1] - pos) * w_pad + pair_off[p0:p1]
            dest_d, src_d = _ragged_copy_indices(
                dest_base, start[kb[p0:p1]], pair_w[p0:p1]
            )
            d_block = np.full((rows * w_pad, dim), np.inf, dtype=ordered.dtype)
            d_block[dest_d] = ordered[src_d]

            row_hits, col_hits = kernel_tier.count_blocks(
                q_block.reshape(rows, q_pad, dim),
                d_block.reshape(rows, w_pad, dim),
                radius_cmp,
                strict,
            )
            row_hits = row_hits.reshape(rows * q_pad)
            col_hits = col_hits.reshape(rows * w_pad)
            # Row credits: query nodes are distinct, their position slices
            # disjoint, so a fancy-index add is safe.
            counts[src_q] += row_hits[dest_q]
            # Column credits (the symmetric direction): a data node can
            # partner several query nodes, so accumulate with add.at; the
            # diagonal blocks are already covered by their row sums.
            nondiag = kb[p0:p1] != np.repeat(q_nodes[pos:end], pair_counts[pos:end])
            if nondiag.any():
                cred_dest, cred_src = _ragged_copy_indices(
                    dest_base[nondiag],
                    start[kb[p0:p1][nondiag]],
                    pair_w[p0:p1][nondiag],
                )
                np.add.at(counts, cred_src, col_hits[cred_dest])

    def _dual_self_pairs(
        self, pairs, radius_sq: float, strict: bool, counts: np.ndarray
    ) -> None:
        """Symmetric self-join over node ``pairs``; counts in position space.

        The traversal is breadth-first and fully vectorised per level: one
        bounds evaluation classifies every live pair as excluded, included
        (credited in O(1)), a blocked kernel, or descending.  Every unordered
        node pair ``{a, b}`` is visited at most once; off-diagonal blocks
        credit both directions from one distance matrix (``(a-b)^2`` equals
        ``(b-a)^2`` bit for bit), diagonal blocks count the full in-block
        matrix including the zero self-distance, matching the batch engine
        (a point lies inside its own ball).
        """
        pair_arr = np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
        if pair_arr.size == 0:
            return
        start, stop = self._start_arr, self._stop_arr
        left, right = self._left_arr, self._right_arr
        terminal = self._terminal
        a_nodes = pair_arr[:, 0]
        b_nodes = pair_arr[:, 1]
        kernel_a_parts: list[np.ndarray] = []
        kernel_b_parts: list[np.ndarray] = []
        while a_nodes.size:
            min_sq, max_sq = self._pair_bounds_sq(self, a_nodes, b_nodes)
            if strict:
                excluded = min_sq >= radius_sq
                included = max_sq < radius_sq
            else:
                excluded = min_sq > radius_sq
                included = max_sq <= radius_sq
            diagonal = a_nodes == b_nodes
            size_a = stop[a_nodes] - start[a_nodes]
            size_b = stop[b_nodes] - start[b_nodes]
            for i in np.flatnonzero(included):
                a, b = a_nodes[i], b_nodes[i]
                counts[start[a] : stop[a]] += size_b[i]
                if not diagonal[i]:
                    counts[start[b] : stop[b]] += size_a[i]
            live = ~(excluded | included)
            # Terminal x terminal pairs are deferred and grouped by query
            # node once the traversal finishes, so every terminal node runs
            # one blocked kernel against all of its partners.
            kernel = live & terminal[a_nodes] & terminal[b_nodes]
            if kernel.any():
                kernel_a_parts.append(a_nodes[kernel])
                kernel_b_parts.append(b_nodes[kernel])
            descend = live & ~kernel
            if not descend.any():
                break
            # Diagonal pairs expand into both children plus the cross pair;
            # off-diagonal pairs descend the larger (non-terminal) side.
            diag = a_nodes[descend & diagonal]
            off = descend & ~diagonal
            off_a, off_b = a_nodes[off], b_nodes[off]
            go_b = terminal[off_a] | (~terminal[off_b] & (size_b[off] > size_a[off]))
            ba, bb = off_a[go_b], off_b[go_b]
            aa, ab = off_a[~go_b], off_b[~go_b]
            a_nodes = np.concatenate(
                [left[diag], right[diag], left[diag], ba, ba, left[aa], right[aa]]
            )
            b_nodes = np.concatenate(
                [left[diag], right[diag], right[diag], left[bb], right[bb], ab, ab]
            )
        if kernel_a_parts:
            self._self_kernel_blocks(
                np.concatenate(kernel_a_parts),
                np.concatenate(kernel_b_parts),
                radius_sq,
                strict,
                counts,
            )

    def _scatter_counts(self, counts_pos: np.ndarray) -> np.ndarray:
        """Inverse-permute position-space counts back to caller point order."""
        out = np.empty_like(counts_pos)
        out[self._indices] = counts_pos
        return out

    def range_count_dual(self, radius, strict: bool = True) -> np.ndarray:
        """Count, for every indexed point, the points within ``radius`` of it.

        One simultaneous traversal of the tree against itself replaces the
        ``n`` per-point traversals of ``range_count_batch(points, radius)``
        and returns the identical counts (bit for bit; property-tested).
        This is the ``engine="dual"`` density primitive.
        """
        radius = check_positive(radius, "radius")
        radius_sq = radius * radius
        counts = np.zeros(self._n, dtype=np.intp)
        self._dual_self_pairs([(self._root, self._root)], radius_sq, strict, counts)
        return self._scatter_counts(counts)

    def dual_self_frontier(
        self, radius, strict: bool = True, target_pairs: int = DUAL_FRONTIER_TARGET
    ) -> tuple[np.ndarray, np.ndarray]:
        """Expand the self-join into independent node-pair work units.

        Returns ``(pairs, base_counts)``: an ``(m, 2)`` array of node pairs
        whose traversals are mutually independent, plus the counts already
        credited (in caller point order) by inclusion/exclusion decisions
        taken during the expansion.  Summing ``base_counts`` with the
        :meth:`range_count_dual_pairs` contributions of *all* pairs -- in any
        grouping, on any backend -- reproduces :meth:`range_count_dual`
        exactly, including the distance-calculation counters: the expansion
        is deterministic and independent of the worker count.
        """
        radius = check_positive(radius, "radius")
        radius_sq = radius * radius
        target_pairs = check_positive_int(target_pairs, "target_pairs")
        counts = np.zeros(self._n, dtype=np.intp)
        start, stop = self._start_arr, self._stop_arr
        left, right = self._left_arr, self._right_arr
        terminal = self._terminal
        seq = 0
        root = self._root
        size = int(stop[root] - start[root])
        heap: list[tuple[int, int, int, int]] = [(-size * size, seq, root, root)]
        done: list[tuple[int, int]] = []
        pair_buf = np.empty(1, dtype=np.intp)
        pair_buf_b = np.empty(1, dtype=np.intp)
        while heap and len(heap) + len(done) < target_pairs:
            _, _, a, b = heapq.heappop(heap)
            sa, ea = start[a], stop[a]
            sb, eb = start[b], stop[b]
            na, nb = int(ea - sa), int(eb - sb)
            pair_buf[0] = a
            pair_buf_b[0] = b
            min_arr, max_arr = self._pair_bounds_sq(self, pair_buf, pair_buf_b)
            min_sq, max_sq = float(min_arr[0]), float(max_arr[0])
            if a != b and ((min_sq >= radius_sq) if strict else (min_sq > radius_sq)):
                continue
            if (max_sq < radius_sq) if strict else (max_sq <= radius_sq):
                if a == b:
                    counts[sa:ea] += na
                else:
                    counts[sa:ea] += nb
                    counts[sb:eb] += na
                continue
            term_a = bool(terminal[a])
            term_b = bool(terminal[b])
            if a == b:
                if term_a:
                    done.append((a, b))
                    continue
                la, ra = int(left[a]), int(right[a])
                children = [(la, la), (ra, ra), (la, ra)]
            elif term_a and term_b:
                done.append((a, b))
                continue
            elif term_a or (not term_b and nb > na):
                children = [(a, int(left[b])), (a, int(right[b]))]
            else:
                children = [(int(left[a]), b), (int(right[a]), b)]
            for ca, cb in children:
                wa = int(stop[ca] - start[ca])
                wb = int(stop[cb] - start[cb])
                seq += 1
                heapq.heappush(heap, (-wa * wb, seq, ca, cb))
        pairs = done + [(a, b) for _, _, a, b in heap]
        pairs.sort()
        pairs_arr = np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
        return pairs_arr, self._scatter_counts(counts)

    def range_count_dual_pairs(
        self, pairs, radius, strict: bool = True
    ) -> np.ndarray:
        """Self-join count contribution (caller point order) of some pairs.

        ``pairs`` is a subset of the work units produced by
        :meth:`dual_self_frontier`; this is the kernel the parallel backends
        ship to workers.
        """
        radius = check_positive(radius, "radius")
        counts = np.zeros(self._n, dtype=np.intp)
        self._dual_self_pairs(pairs, radius * radius, strict, counts)
        return self._scatter_counts(counts)

    def range_count_dual_vs(self, queries_tree: "KDTree", radius, strict: bool = True) -> np.ndarray:
        """Count this tree's points within ``radius`` of every query point.

        ``queries_tree`` is a :class:`KDTree` over the query points (built
        with the same dtype); the result -- one count per query, in the
        query tree's original point order -- is bit-for-bit identical to
        ``range_count_batch(queries_tree.points, radius)``.  This is the
        join ``predict`` and the streaming layer use to score new points
        against a fitted tree.
        """
        self._check_dual_partner(queries_tree)
        radius = check_positive(radius, "radius")
        radius_sq = radius * radius
        qt = queries_tree
        counts = np.zeros(qt._n, dtype=np.intp)

        def on_included(a: int, b: int) -> None:
            counts[qt._start_arr[a] : qt._stop_arr[a]] += (
                self._stop_arr[b] - self._start_arr[b]
            )

        def on_kernel_groups(ka: np.ndarray, kb: np.ndarray) -> None:
            self._count_vs_kernel_groups(qt, ka, kb, radius_sq, strict, counts)

        self._dual_vs_traverse(
            qt,
            lambda _a, min_sq: (min_sq >= radius_sq) if strict else (min_sq > radius_sq),
            lambda _a, max_sq: (max_sq < radius_sq) if strict else (max_sq <= radius_sq),
            on_included,
            on_kernel_groups,
        )
        return qt._scatter_counts(counts)

    def _count_vs_kernel_groups(
        self,
        qt: "KDTree",
        ka: np.ndarray,
        kb: np.ndarray,
        radius_sq: float,
        strict: bool,
        counts: np.ndarray,
    ) -> None:
        """Mega-batched radius-count kernels of the vs-join.

        ``(ka, kb)`` are the deferred terminal kernel pairs, sorted by query
        node ``ka``.  All data blocks joined against the same query node
        form one group; groups are padded into shared block shapes and
        answered by the kernel tier's ``count_blocks`` (only the query side
        is credited -- the vs-join is asymmetric).  Per-pair arithmetic and
        the total distance-calculation count are unchanged by the grouping.
        """
        if ka.size == 0:
            return
        d_start, d_stop = self._start_arr, self._stop_arr
        q_start, q_stop = qt._start_arr, qt._stop_arr
        group_first = np.flatnonzero(np.r_[True, ka[1:] != ka[:-1]])
        groups_a = ka[group_first]
        d_run_len = d_stop[kb] - d_start[kb]
        d_lens = np.add.reduceat(d_run_len, group_first)
        d_pos = _concat_ranges(d_start[kb], d_run_len)
        q_lens = q_stop[groups_a] - q_start[groups_a]
        q_pos = _concat_ranges(q_start[groups_a], q_lens)

        self.counter.add(
            "distance_calcs",
            float(np.dot(q_lens.astype(np.float64), d_lens.astype(np.float64))),
        )

        ordered_q = qt.points_ordered
        ordered_d = self.points_ordered
        dim = self._dim
        kernel_tier = self._kernel
        radius_cmp = ordered_d.dtype.type(radius_sq)

        # Width-sorted groups pad tightly; the offsets below address each
        # group's slice of the concatenated position arrays.
        q_off = np.cumsum(q_lens) - q_lens
        d_off = np.cumsum(d_lens) - d_lens
        g_order = np.argsort(d_lens, kind="stable")
        q_lens, d_lens = q_lens[g_order], d_lens[g_order]
        q_off, d_off = q_off[g_order], d_off[g_order]

        for pos, end, q_pad, w_pad in _iter_padded_chunks(
            kernel_tier.block_budget, dim, q_lens, d_lens
        ):
            rows = end - pos
            dest_q, src_q = _ragged_copy_indices(
                np.arange(rows, dtype=np.intp) * q_pad, q_off[pos:end], q_lens[pos:end]
            )
            q_sel = q_pos[src_q]
            q_block = np.full((rows * q_pad, dim), np.inf, dtype=ordered_d.dtype)
            q_block[dest_q] = ordered_q[q_sel]

            dest_d, src_d = _ragged_copy_indices(
                np.arange(rows, dtype=np.intp) * w_pad, d_off[pos:end], d_lens[pos:end]
            )
            d_block = np.full((rows * w_pad, dim), np.inf, dtype=ordered_d.dtype)
            d_block[dest_d] = ordered_d[d_pos[src_d]]

            row_hits, _ = kernel_tier.count_blocks(
                q_block.reshape(rows, q_pad, dim),
                d_block.reshape(rows, w_pad, dim),
                radius_cmp,
                strict,
                with_col=False,
            )
            # Query nodes are distinct across groups, so their position
            # sets are disjoint and a fancy-index add is safe.
            counts[q_sel] += row_hits.reshape(rows * q_pad)[dest_q]

    def _gather_blocks(self, nodes: np.ndarray) -> np.ndarray:
        """Concatenate the contiguous ordered-point slices of ``nodes``."""
        start, stop = self._start_arr, self._stop_arr
        ordered = self.points_ordered
        if nodes.size == 1:
            node = nodes[0]
            return ordered[start[node] : stop[node]]
        return np.concatenate([ordered[start[b] : stop[b]] for b in nodes])

    def _dual_vs_traverse(
        self, qt: "KDTree", is_excluded, is_included, on_included, on_kernel_groups
    ) -> None:
        """Breadth-first vectorised pair traversal of ``qt`` against ``self``.

        ``is_excluded(a_nodes, min_sq)`` / ``is_included(a_nodes, max_sq)``
        receive the level's query node ids and vectorised node-pair bounds
        (the ids matter for per-query radii); ``on_included(a, b)`` handles
        one credited pair.  All terminal kernel pairs are deferred to the end
        of the traversal and handed over in a single
        ``on_kernel_groups(ka, kb)`` call, sorted by query node ``ka``, so
        implementations can mega-batch every kernel into padded blocks.
        """
        if qt._n == 0 or self._n == 0:
            return
        q_start, q_stop = qt._start_arr, qt._stop_arr
        q_left, q_right = qt._left_arr, qt._right_arr
        d_start, d_stop = self._start_arr, self._stop_arr
        d_left, d_right = self._left_arr, self._right_arr
        q_terminal = qt._terminal
        d_terminal = self._terminal
        a_nodes = np.asarray([qt._root], dtype=np.intp)
        b_nodes = np.asarray([self._root], dtype=np.intp)
        kernel_a_parts: list[np.ndarray] = []
        kernel_b_parts: list[np.ndarray] = []
        while a_nodes.size:
            min_sq, max_sq = qt._pair_bounds_sq(self, a_nodes, b_nodes)
            excluded = is_excluded(a_nodes, min_sq)
            included = is_included(a_nodes, max_sq)
            for i in np.flatnonzero(included):
                on_included(a_nodes[i], b_nodes[i])
            live = ~(excluded | included)
            kernel = live & q_terminal[a_nodes] & d_terminal[b_nodes]
            if kernel.any():
                kernel_a_parts.append(a_nodes[kernel])
                kernel_b_parts.append(b_nodes[kernel])
            descend = live & ~kernel
            if not descend.any():
                break
            off_a, off_b = a_nodes[descend], b_nodes[descend]
            size_a = q_stop[off_a] - q_start[off_a]
            size_b = d_stop[off_b] - d_start[off_b]
            go_b = q_terminal[off_a] | (~d_terminal[off_b] & (size_b > size_a))
            ba, bb = off_a[go_b], off_b[go_b]
            aa, ab = off_a[~go_b], off_b[~go_b]
            a_nodes = np.concatenate([ba, ba, q_left[aa], q_right[aa]])
            b_nodes = np.concatenate([d_left[bb], d_right[bb], ab, ab])
        if kernel_a_parts:
            ka = np.concatenate(kernel_a_parts)
            kb = np.concatenate(kernel_b_parts)
            order = np.argsort(ka, kind="stable")
            on_kernel_groups(ka[order], kb[order])

    def range_search_dual_vs(
        self, queries_tree: "KDTree", radius, strict: bool = True
    ) -> list[np.ndarray]:
        """Dual-tree counterpart of :meth:`range_search_batch`.

        Returns one ascending index array per query point (in the query
        tree's original point order) holding exactly the same hit sets as
        ``range_search_batch(queries_tree.points, radius)``.  ``radius`` may
        be a scalar or one radius per query (aligned with the query tree's
        original point order) -- the per-query form is what Approx-DPC's
        joint range search uses.  Included node pairs materialise their hits
        straight from the permutation slices without computing distances.
        """
        self._check_dual_partner(queries_tree)
        qt = queries_tree
        n_q = qt._n
        radius_sq = qt._check_radius_sq_batch(radius, n_q)
        # Per-position squared radii plus per-node min/max bounds on the
        # query side (an included pair must fit the *smallest* radius in the
        # query node, an excluded pair must miss the *largest*).
        r_sq_pos = radius_sq[qt._indices]
        node_count = qt.node_count
        rmin = np.empty(node_count, dtype=np.float64)
        rmax = np.empty(node_count, dtype=np.float64)
        q_start, q_stop, q_left, q_right = (
            qt._start_arr, qt._stop_arr, qt._left_arr, qt._right_arr,
        )
        for node in range(node_count - 1, -1, -1):
            child = q_left[node]
            if child == _NO_CHILD:
                block = r_sq_pos[q_start[node] : q_stop[node]]
                rmin[node] = block.min()
                rmax[node] = block.max()
            else:
                other = q_right[node]
                rmin[node] = min(rmin[child], rmin[other])
                rmax[node] = max(rmax[child], rmax[other])

        d_start, d_stop = self._start_arr, self._stop_arr
        d_indices = self._indices
        hit_q: list[np.ndarray] = []
        hit_p: list[np.ndarray] = []

        def on_included(a: int, b: int) -> None:
            sa, ea = q_start[a], q_stop[a]
            sb, eb = d_start[b], d_stop[b]
            hit_q.append(np.repeat(np.arange(sa, ea, dtype=np.intp), eb - sb))
            hit_p.append(np.tile(d_indices[sb:eb], ea - sa))

        def on_kernel_groups(ka: np.ndarray, kb: np.ndarray) -> None:
            # Hit *sets* are ragged (per-query radii), so groups are answered
            # one query node at a time; the distances themselves still run
            # through the kernel tier's blocked primitive.
            for lo, hi in _group_boundaries(ka):
                a, partners = ka[lo], kb[lo:hi]
                sa, ea = q_start[a], q_stop[a]
                data = self._gather_blocks(partners)
                data_idx = (
                    d_indices[d_start[partners[0]] : d_stop[partners[0]]]
                    if partners.size == 1
                    else np.concatenate(
                        [d_indices[d_start[b] : d_stop[b]] for b in partners]
                    )
                )
                d_sq = self._kernel.pair_distances_sq(
                    qt.points_ordered[sa:ea], data
                )
                bound = r_sq_pos[sa:ea, None]
                hits = d_sq < bound if strict else d_sq <= bound
                self.counter.add(
                    "distance_calcs", float(ea - sa) * float(data.shape[0])
                )
                rows, cols = np.nonzero(hits)
                if rows.size:
                    hit_q.append(sa + rows.astype(np.intp))
                    hit_p.append(data_idx[cols])

        if strict:
            is_excluded = lambda a_nodes, min_sq: min_sq >= rmax[a_nodes]
            is_included = lambda a_nodes, max_sq: max_sq < rmin[a_nodes]
        else:
            is_excluded = lambda a_nodes, min_sq: min_sq > rmax[a_nodes]
            is_included = lambda a_nodes, max_sq: max_sq <= rmin[a_nodes]
        self._dual_vs_traverse(qt, is_excluded, is_included, on_included, on_kernel_groups)

        results: list[np.ndarray] = [np.empty(0, dtype=np.intp) for _ in range(n_q)]
        if not hit_q:
            return results
        all_q = np.concatenate(hit_q)
        all_p = np.concatenate(hit_p)
        order = np.argsort(all_q, kind="stable")
        all_q = all_q[order]
        all_p = all_p[order]
        boundaries = np.searchsorted(all_q, np.arange(n_q + 1))
        q_indices = qt._indices
        for position in range(n_q):
            lo, hi = boundaries[position], boundaries[position + 1]
            if hi > lo:
                results[q_indices[position]] = np.sort(all_p[lo:hi])
        return results

    # ------------------------------------------- dual nearest-denser queries
    #
    # The dependency phase of every DPC variant asks, for each query point,
    # for the *nearest point with strictly higher local density*.  The
    # methods below answer that as one bulk join -- a simultaneous traversal
    # of a query tree against this tree carrying (a) a per-query
    # best-distance bound that tightens as candidates are found and (b) the
    # per-node density maxima attached by attach_density_bounds, so a node
    # pair prunes either because its boxes are farther apart than every
    # contained query's current bound or because the data subtree holds no
    # point denser than any contained query.
    #
    # Contract (shared with every other nearest-denser code path in the
    # library): candidates are compared by lexicographic (squared distance,
    # point index), squared distances use the canonical sequential kernel
    # arithmetic, and everything is computed in float64 regardless of
    # the tree's storage dtype -- so the scalar, batch and dual dependency
    # engines agree bit for bit even on duplicate-heavy data.

    @property
    def _pruning_ordered(self) -> np.ndarray:
        """Float64 leaf-ordered points of the nearest-denser join.

        Identical to :attr:`points_ordered` for float64 trees; float32 trees
        get a separate float64 copy gathered from :attr:`source_points`, so
        the dependency phase always runs in full precision (matching the
        scalar engine) while densities keep the storage precision.
        """
        if self._dtype == np.float64:
            return self.points_ordered
        if self._ordered64_cache is None:
            self._ordered64_cache = np.ascontiguousarray(
                self._source_points[self._indices]
            )
        return self._ordered64_cache

    @property
    def _pruning_bbox(self) -> tuple[np.ndarray, np.ndarray]:
        """Float64 per-node bounding boxes enclosing the float64 coordinates.

        The stored float32 boxes of a float32 tree bound the *rounded*
        coordinates and may exclude the float64 originals by an ulp, which
        would make the join's box-distance pruning unsound; this recomputes
        genuine float64 boxes once per tree when needed.
        """
        if self._dtype == np.float64:
            return self._bbox_min_arr, self._bbox_max_arr
        if self._bbox64_cache is None:
            ordered = self._pruning_ordered
            n_nodes = self.node_count
            bbox_min = np.empty((n_nodes, self._dim), dtype=np.float64)
            bbox_max = np.empty((n_nodes, self._dim), dtype=np.float64)
            left, right = self._left_arr, self._right_arr
            start, stop = self._start_arr, self._stop_arr
            for node in range(n_nodes - 1, -1, -1):
                child = left[node]
                if child == _NO_CHILD:
                    block = ordered[start[node] : stop[node]]
                    bbox_min[node] = block.min(axis=0)
                    bbox_max[node] = block.max(axis=0)
                else:
                    other = right[node]
                    np.minimum(bbox_min[child], bbox_min[other], out=bbox_min[node])
                    np.maximum(bbox_max[child], bbox_max[other], out=bbox_max[node])
            self._bbox64_cache = (bbox_min, bbox_max)
        return self._bbox64_cache

    def _node_reduce_positions(self, values_pos: np.ndarray, minimum: bool) -> np.ndarray:
        """Per-node min/max of a position-space value array (reverse sweep)."""
        n_nodes = self.node_count
        out = np.empty(n_nodes, dtype=np.float64)
        left, right = self._left_arr, self._right_arr
        start, stop = self._start_arr, self._stop_arr
        for node in range(n_nodes - 1, -1, -1):
            child = left[node]
            if child == _NO_CHILD:
                block = values_pos[start[node] : stop[node]]
                out[node] = block.min() if minimum else block.max()
            else:
                other = right[node]
                out[node] = (
                    min(out[child], out[other])
                    if minimum
                    else max(out[child], out[other])
                )
        return out

    def attach_density_bounds(self, rho, *, node_max: np.ndarray | None = None) -> np.ndarray:
        """Attach per-node maxima of a per-point density array (caller order).

        Computes (or adopts, when ``node_max`` comes from a trusted snapshot)
        the per-node maximum of ``rho`` over each node's point slice, stores
        it as :attr:`KDTreeArrays.rho_max` so snapshots carry it, and primes
        the cache :meth:`nn_dual_vs` reads.  Returns the per-node maxima.
        """
        source = rho
        rho = np.ascontiguousarray(rho, dtype=np.float64).reshape(-1)
        if rho.shape[0] != self._n:
            raise ValueError("rho must hold one density per indexed point")
        rho_pos = np.ascontiguousarray(rho[self._indices])
        if node_max is None:
            node_max = self._node_reduce_positions(rho_pos, minimum=False)
        else:
            node_max = np.ascontiguousarray(node_max, dtype=np.float64).reshape(-1)
            if node_max.shape[0] != self.node_count:
                raise ValueError("node_max must hold one value per node")
        self._arrays = replace(self._arrays, rho_max=node_max)
        # Key the cache on the object the caller passed (result.rho_), so
        # later joins against the same array hit it without recomputation.
        self._density_cache = (source, rho_pos, node_max)
        return node_max

    def _density_bounds(self, rho: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(rho_pos, node_max)`` for a caller-order density array (cached)."""
        cached = self._density_cache
        if cached is not None and cached[0] is rho:
            return cached[1], cached[2]
        rho_pos = np.ascontiguousarray(rho[self._indices])
        node_max = self._node_reduce_positions(rho_pos, minimum=False)
        self._density_cache = (rho, rho_pos, node_max)
        return rho_pos, node_max

    def _query_density_bounds(self, rho_q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(rho_q_pos, node_min)`` for a query-side density array (cached).

        The chunked join calls :meth:`nn_dual_vs` once per frontier slice
        with the same ``rho_q`` object; caching by identity avoids redoing
        the position gather and the pure-Python per-node reverse sweep per
        chunk.
        """
        cached = self._q_density_cache
        if cached is not None and cached[0] is rho_q:
            return cached[1], cached[2]
        rho_q_pos = np.ascontiguousarray(rho_q[self._indices])
        node_min = self._node_reduce_positions(rho_q_pos, minimum=True)
        self._q_density_cache = (rho_q, rho_q_pos, node_min)
        return rho_q_pos, node_min

    def node_frontier(self, target_nodes: int = DUAL_FRONTIER_TARGET) -> np.ndarray:
        """Expand the tree into ~``target_nodes`` disjoint subtree roots.

        The expansion is purely structural (largest node first, ties by
        insertion order) and therefore deterministic: it is the canonical
        work-unit decomposition of the nearest-denser join, shared by every
        execution backend so results and work counters stay bit-for-bit
        identical across backends and worker counts.  The returned node ids
        are sorted ascending and their point slices partition the tree.
        """
        target_nodes = check_positive_int(target_nodes, "target_nodes")
        start, stop = self._start_arr, self._stop_arr
        left, right = self._left_arr, self._right_arr
        terminal = self._terminal
        seq = 0
        heap: list[tuple[int, int, int]] = [
            (-int(stop[self._root] - start[self._root]), seq, self._root)
        ]
        done: list[int] = []
        while heap and len(heap) + len(done) < target_nodes:
            _, _, node = heapq.heappop(heap)
            if terminal[node]:
                done.append(node)
                continue
            for child in (int(left[node]), int(right[node])):
                seq += 1
                heapq.heappush(
                    heap, (-int(stop[child] - start[child]), seq, child)
                )
        nodes = done + [node for _, _, node in heap]
        nodes.sort()
        return np.asarray(nodes, dtype=np.intp)

    def node_positions(self, nodes) -> np.ndarray:
        """Caller-order point indices covered by the given nodes' slices."""
        nodes = np.asarray(nodes, dtype=np.intp).reshape(-1)
        if nodes.size == 0:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(
            [
                self._indices[self._start_arr[node] : self._stop_arr[node]]
                for node in nodes
            ]
        )

    def _nn_merge_groups(
        self,
        qt: "KDTree",
        q_pos: np.ndarray,
        q_lens: np.ndarray,
        d_pos: np.ndarray,
        d_lens: np.ndarray,
        rho_pos: np.ndarray,
        rho_q_pos: np.ndarray,
        best_sq: np.ndarray,
        best_idx: np.ndarray,
    ) -> None:
        """Mega-batched nearest-denser candidate kernels.

        ``q_pos`` / ``d_pos`` concatenate the query-tree / data-tree
        positions of all groups; group ``g`` owns the next ``q_lens[g]``
        queries and ``d_lens[g]`` candidates.  Groups are padded into shared
        ``(g, q, d)`` x ``(g, j, d)`` block shapes (padded queries carry
        ``rho == +inf``, padded candidates ``rho == -inf`` and sentinel
        indices, so neither side can ever be selected) and answered by the
        kernel tier's ``nn_blocks``, one call per budgeted chunk.
        Candidates fold into the running best arrays by lexicographic
        (squared distance, data point index), so the outcome is independent
        of grouping, chunking and arrival order.  The groups' query position
        sets must be pairwise disjoint (distinct query nodes, or routing
        that sends each query to exactly one region), which makes the
        fancy-index merge race-free.
        """
        q_lens = np.asarray(q_lens, dtype=np.intp)
        d_lens = np.asarray(d_lens, dtype=np.intp)
        # Logical (unpadded) pair count; exact because every addend is an
        # integer well below 2**53.
        self.counter.add(
            "distance_calcs",
            float(np.dot(q_lens.astype(np.float64), d_lens.astype(np.float64))),
        )
        q_ordered = qt._pruning_ordered
        d_ordered = self._pruning_ordered
        d_indices = self._indices
        dim = self._dim
        kernel_tier = self._kernel

        # Width-sorted groups pad tightly; the offsets address each group's
        # slice of the concatenated position arrays.
        q_off = np.cumsum(q_lens) - q_lens
        d_off = np.cumsum(d_lens) - d_lens
        g_order = np.argsort(d_lens, kind="stable")
        q_lens, d_lens = q_lens[g_order], d_lens[g_order]
        q_off, d_off = q_off[g_order], d_off[g_order]

        for pos, end, q_pad, w_pad in _iter_padded_chunks(
            kernel_tier.block_budget, dim, q_lens, d_lens
        ):
            rows = end - pos
            dest_q, src_q = _ragged_copy_indices(
                np.arange(rows, dtype=np.intp) * q_pad, q_off[pos:end], q_lens[pos:end]
            )
            q_sel = q_pos[src_q]
            q_block = np.full((rows * q_pad, dim), np.inf, dtype=np.float64)
            q_block[dest_q] = q_ordered[q_sel]
            rho_q_block = np.full(rows * q_pad, np.inf, dtype=np.float64)
            rho_q_block[dest_q] = rho_q_pos[q_sel]

            dest_d, src_d = _ragged_copy_indices(
                np.arange(rows, dtype=np.intp) * w_pad, d_off[pos:end], d_lens[pos:end]
            )
            d_sel = d_pos[src_d]
            d_block = np.full((rows * w_pad, dim), np.inf, dtype=np.float64)
            d_block[dest_d] = d_ordered[d_sel]
            rho_d_block = np.full(rows * w_pad, -np.inf, dtype=np.float64)
            rho_d_block[dest_d] = rho_pos[d_sel]
            idx_block = np.full(rows * w_pad, np.iinfo(np.intp).max, dtype=np.intp)
            idx_block[dest_d] = d_indices[d_sel]

            cand_sq, cand_idx = kernel_tier.nn_blocks(
                q_block.reshape(rows, q_pad, dim),
                rho_q_block.reshape(rows, q_pad),
                d_block.reshape(rows, w_pad, dim),
                rho_d_block.reshape(rows, w_pad),
                idx_block.reshape(rows, w_pad),
            )
            cand_sq = cand_sq.reshape(rows * q_pad)[dest_q]
            cand_idx = cand_idx.reshape(rows * q_pad)[dest_q]
            cur_sq = best_sq[q_sel]
            cur_idx = best_idx[q_sel]
            # cand_idx is unspecified where cand_sq == inf, so mask on
            # finiteness before the lexicographic comparison.
            better = np.isfinite(cand_sq) & (
                (cand_sq < cur_sq) | ((cand_sq == cur_sq) & (cand_idx < cur_idx))
            )
            hit = np.flatnonzero(better)
            if hit.size:
                best_sq[q_sel[hit]] = cand_sq[hit]
                best_idx[q_sel[hit]] = cand_idx[hit]

    def _nn_seed_level(
        self,
        qt: "KDTree",
        qpos: np.ndarray,
        max_size: int,
        rho_pos: np.ndarray,
        rho_q_pos: np.ndarray,
        best_sq: np.ndarray,
        best_idx: np.ndarray,
    ) -> None:
        """One seeding-pyramid level: join queries against their home region.

        Routes each query (given by query-tree position) down *this* tree to
        the smallest ancestor region of at most ``max_size`` points (or a
        leaf); every terminal region becomes one kernel group of a single
        mega-batched :meth:`_nn_merge_groups` call (each query reaches
        exactly one region per level, so the groups' query sets are
        disjoint).  Routing compares against the storage-dtype split values,
        which only decides *which* region seeds the query -- the merged
        distances are always the canonical float64 values.
        """
        q_ordered = qt._pruning_ordered
        start, stop = self._start_arr, self._stop_arr
        left, right = self._left_arr, self._right_arr
        q_groups: list[np.ndarray] = []
        region_lo: list[int] = []
        region_len: list[int] = []
        stack: list[tuple[int, np.ndarray]] = [(self._root, qpos)]
        while stack:
            node, sub = stack.pop()
            if left[node] == _NO_CHILD or stop[node] - start[node] <= max_size:
                q_groups.append(sub)
                region_lo.append(int(start[node]))
                region_len.append(int(stop[node] - start[node]))
                continue
            dim = self._split_dim_arr[node]
            diff = q_ordered[sub, dim] - np.float64(self._split_val_arr[node])
            on_left = diff < 0.0
            if on_left.any():
                stack.append((int(left[node]), sub[on_left]))
            if not on_left.all():
                stack.append((int(right[node]), sub[~on_left]))
        d_lens = np.asarray(region_len, dtype=np.intp)
        self._nn_merge_groups(
            qt,
            np.concatenate(q_groups),
            np.asarray([g.size for g in q_groups], dtype=np.intp),
            _concat_ranges(np.asarray(region_lo, dtype=np.intp), d_lens),
            d_lens,
            rho_pos,
            rho_q_pos,
            best_sq,
            best_idx,
        )

    def nn_dual_vs(
        self,
        queries_tree: "KDTree",
        rho,
        rho_q,
        *,
        q_nodes=None,
        seed_idx=None,
        seed_sq=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest strictly-denser point of this tree for every query point.

        Parameters
        ----------
        queries_tree:
            :class:`KDTree` over the query points (may be this tree itself:
            the self-join of the fit dependency phase).
        rho:
            Per-data-point densities in this tree's caller point order.
        rho_q:
            Per-query densities in the query tree's caller point order.  A
            data point is a candidate for a query iff its density is
            *strictly* larger, which also makes every point ineligible as
            its own dependent point in the self-join.
        q_nodes:
            Optional query-tree node ids restricting the join to the queries
            covered by those subtrees (the work units of
            :meth:`node_frontier`).  Uncovered queries keep ``(-1, inf)``.
        seed_idx, seed_sq:
            Optional per-query initial best candidates (both or neither), in
            the query tree's caller point order: a data point index (``-1``
            for no seed) and its squared distance (``inf`` for no seed).
            Every seed MUST be a genuinely denser data point whose squared
            distance was computed with the canonical float64 kernel
            arithmetic; the merges are exact lexicographic comparisons, so
            valid seeds can only tighten the traversal's pruning bounds --
            the returned answers are bit-identical with or without them.
            Callers that track an out-of-date dependency forest (the
            re-cluster index) use this to turn the worst-case queries --
            sparse-region points whose nearest denser neighbour is far away
            -- into nearly-free bound checks.

        Returns
        -------
        tuple
            ``(indices, distances)`` in the query tree's caller point order;
            ``-1`` / ``inf`` for queries with no denser point.  Identical --
            bit for bit, including exact-tie resolution by smallest index --
            to a brute-force masked scan with the batch-kernel arithmetic.
        """
        qt = queries_tree
        if not isinstance(qt, KDTree):
            raise TypeError("nearest-denser joins require a KDTree over the queries")
        if qt._dim != self._dim:
            raise ValueError(
                f"query tree has dimension {qt._dim}, expected {self._dim}"
            )
        # Normalisation must hand conforming inputs through *unchanged* (the
        # per-call aggregate caches key on array identity).
        rho = _as_density_vector(rho, self._n, "rho")
        rho_q = _as_density_vector(rho_q, qt._n, "rho_q")

        n_q = qt._n
        if (seed_idx is None) != (seed_sq is None):
            raise ValueError("seed_idx and seed_sq must be provided together")
        if seed_idx is not None:
            seed_idx = np.asarray(seed_idx, dtype=np.intp)
            seed_sq = np.asarray(seed_sq, dtype=np.float64)
            if seed_idx.shape != (n_q,) or seed_sq.shape != (n_q,):
                raise ValueError("seeds must provide one entry per query point")
            # Caller order -> query position space (fancy indexing copies,
            # so the caller's arrays are never written to).
            best_idx = seed_idx[qt._indices]
            best_sq = seed_sq[qt._indices]
        else:
            best_idx = np.full(n_q, -1, dtype=np.intp)  # query position space
            best_sq = np.full(n_q, np.inf)
        if n_q == 0 or self._n == 0:
            return best_idx, best_sq.copy()

        rho_pos, node_rho_max = self._density_bounds(rho)
        rho_q_pos, q_node_rho_min = qt._query_density_bounds(rho_q)
        # Queries at least as dense as the densest data point have no
        # candidate anywhere; fixing them up front keeps their infinite
        # "bound" from poisoning the per-node pruning bounds.
        hopeless = rho_q_pos >= node_rho_max[self._root]

        if q_nodes is None:
            q_nodes = np.asarray([qt._root], dtype=np.intp)
        else:
            q_nodes = np.asarray(q_nodes, dtype=np.intp).reshape(-1)
        if q_nodes.size == 0:
            return self._nn_scatter(qt, best_idx, best_sq)

        q_start, q_stop = qt._start_arr, qt._stop_arr
        q_left, q_right = qt._left_arr, qt._right_arr
        d_left, d_right = self._left_arr, self._right_arr
        d_start, d_stop = self._start_arr, self._stop_arr

        covered = np.concatenate(
            [np.arange(q_start[a], q_stop[a], dtype=np.intp) for a in q_nodes]
        )

        # ---- seeding pyramid: route every covered query to progressively
        # larger home regions of *this* tree until it has found some denser
        # point (any candidate is a valid upper bound; the merges are exact
        # lex comparisons, so seeding can only tighten, never change, the
        # final answer).  Queries denser than their entire largest home
        # region are resolved exactly against the full point set -- their
        # count shrinks geometrically with the region size, so the brute
        # block stays tiny.  Every step is per-query deterministic, which
        # keeps results *and* work counters invariant under q_nodes chunking.
        needs = covered[~hopeless[covered]]
        if seed_idx is not None:
            # Externally seeded queries already hold a valid upper bound;
            # they skip the pyramid and go straight to the pruned traversal.
            needs = needs[best_idx[needs] < 0]
        for multiplier in _NN_SEED_LEVELS:
            if needs.size == 0:
                break
            self._nn_seed_level(
                qt, needs, _DUAL_BLOCK * multiplier, rho_pos, rho_q_pos,
                best_sq, best_idx,
            )
            needs = needs[best_idx[needs] < 0]
        if needs.size:
            self._nn_merge_groups(
                qt,
                needs,
                np.asarray([needs.size], dtype=np.intp),
                np.arange(self._n, dtype=np.intp),
                np.asarray([self._n], dtype=np.intp),
                rho_pos,
                rho_q_pos,
                best_sq,
                best_idx,
            )

        # ---- simultaneous pair traversal.
        a_min, a_max = qt._pruning_bbox
        b_min, b_max = self._pruning_bbox
        q_terminal = qt._terminal
        d_terminal = self._terminal
        # Bound staging array in query position space.  Only the covered
        # positions are ever spanned by a live pair's node slice, so only
        # they need refreshing per wavefront -- the rest stay at the -inf
        # initialisation (O(covered) per iteration, not O(n_q), which
        # matters when one chunked call covers a small frontier slice).
        eff_pad = np.full(n_q + 1, -np.inf, dtype=np.float64)
        not_hopeless_cov = covered[~hopeless[covered]]
        a_nodes = q_nodes.copy()
        b_nodes = np.full(q_nodes.size, self._root, dtype=np.intp)
        while a_nodes.size:
            # Per-pair minimum squared box distance (float64 boxes).
            gap = np.maximum(
                b_min[b_nodes] - a_max[a_nodes], a_min[a_nodes] - b_max[b_nodes]
            )
            np.maximum(gap, 0.0, out=gap)
            min_sq = squared_norms(gap)

            # Per-query-node pruning bound: the largest current best squared
            # distance of any contained, non-hopeless query.  Non-strict
            # comparison keeps exact-distance ties reachable so the
            # smallest-index tie-break is traversal-order independent.
            eff_pad[not_hopeless_cov] = best_sq[not_hopeless_cov]
            unique_a, inverse = np.unique(a_nodes, return_inverse=True)
            edges = np.stack([q_start[unique_a], q_stop[unique_a]], axis=1).ravel()
            bound = np.maximum.reduceat(eff_pad, edges)[::2][inverse]

            pruned = (min_sq > bound) | (
                node_rho_max[b_nodes] <= q_node_rho_min[a_nodes]
            )
            live = ~pruned
            kernel = live & q_terminal[a_nodes] & d_terminal[b_nodes]
            if kernel.any():
                # One mega-batched merge for the whole wavefront: the pruning
                # bound above was computed before any of these kernels, and
                # groups (distinct query nodes) touch disjoint query position
                # slices, so batching cannot change any result bit.
                ka = a_nodes[kernel]
                kb = b_nodes[kernel]
                order = np.lexsort((kb, ka))
                ka, kb = ka[order], kb[order]
                group_first = np.flatnonzero(np.r_[True, ka[1:] != ka[:-1]])
                groups_a = ka[group_first]
                d_run_len = d_stop[kb] - d_start[kb]
                q_lens = q_stop[groups_a] - q_start[groups_a]
                self._nn_merge_groups(
                    qt,
                    _concat_ranges(q_start[groups_a], q_lens),
                    q_lens,
                    _concat_ranges(d_start[kb], d_run_len),
                    np.add.reduceat(d_run_len, group_first),
                    rho_pos,
                    rho_q_pos,
                    best_sq,
                    best_idx,
                )
            descend = live & ~kernel
            if not descend.any():
                break
            off_a, off_b = a_nodes[descend], b_nodes[descend]
            size_a = q_stop[off_a] - q_start[off_a]
            size_b = d_stop[off_b] - d_start[off_b]
            go_b = q_terminal[off_a] | (~d_terminal[off_b] & (size_b > size_a))
            ba, bb = off_a[go_b], off_b[go_b]
            aa, ab = off_a[~go_b], off_b[~go_b]
            a_nodes = np.concatenate([ba, ba, q_left[aa], q_right[aa]])
            b_nodes = np.concatenate([d_left[bb], d_right[bb], ab, ab])

        return self._nn_scatter(qt, best_idx, best_sq)

    @staticmethod
    def _nn_scatter(
        qt: "KDTree", best_idx: np.ndarray, best_sq: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Inverse-permute position-space results to query caller order."""
        out_idx = np.empty_like(best_idx)
        out_sq = np.empty_like(best_sq)
        out_idx[qt._indices] = best_idx
        out_sq[qt._indices] = best_sq
        return out_idx, np.sqrt(out_sq)

    def range_nn_dual(self, rho, *, q_nodes=None) -> tuple[np.ndarray, np.ndarray]:
        """Nearest-denser *self*-join: every indexed point queries this tree.

        One simultaneous traversal of the tree against itself replaces the
        ``n`` per-point nearest-denser searches of the dependency phase;
        strict density comparison makes every point ineligible as its own
        dependent point, so no explicit self-exclusion is needed.  Returns
        ``(indices, distances)`` in caller point order (``-1`` / ``inf`` for
        the globally densest point).
        """
        return self.nn_dual_vs(self, rho, rho, q_nodes=q_nodes)


class _IncNode:
    """A node of the pointer-based incremental kd-tree."""

    __slots__ = ("index", "axis", "left", "right")

    def __init__(self, index: int, axis: int):
        self.index = index
        self.axis = axis
        self.left: Optional["_IncNode"] = None
        self.right: Optional["_IncNode"] = None


class IncrementalKDTree:
    """Pointer-based kd-tree supporting one-point-at-a-time insertion.

    Ex-DPC builds this tree incrementally in descending order of local
    density: when the dependent point of ``p_i`` is requested, the tree
    contains exactly the points with higher density than ``rho_i``, so a plain
    nearest-neighbour query yields the exact dependent point (§3).

    The tree cycles the split axis with depth (the classic Bentley insertion
    scheme).  Insertion order in Ex-DPC is essentially random with respect to
    the coordinates, so the expected depth stays ``O(log n)``.

    Two storage modes are supported:

    * **static** (``points`` given): the classic Ex-DPC mode -- the full point
      matrix exists up front and :meth:`insert` adds rows by index;
    * **dynamic** (``points=None, dim=d``): the tree owns a growable matrix
      and :meth:`append` adds brand-new points one at a time.  This is the
      *hot buffer* of the streaming layer (:mod:`repro.stream`): freshly
      ingested points are appended here between the amortized rebuilds of the
      static :class:`KDTree`.
    """

    def __init__(
        self,
        points=None,
        dim: int | None = None,
        counter: WorkCounter | None = None,
    ):
        if points is None:
            if dim is None:
                raise ValueError("dim is required when no point matrix is given")
            self._dim = check_positive_int(dim, "dim")
            self._store = np.empty((0, self._dim), dtype=np.float64)
            self._n_rows = 0
            self._dynamic = True
        else:
            self._store = check_points(points, name="points")
            self._dim = self._store.shape[1] if dim is None else int(dim)
            if self._dim != self._store.shape[1]:
                raise ValueError("dim does not match the point matrix width")
            self._n_rows = self._store.shape[0]
            self._dynamic = False
        self._root: Optional[_IncNode] = None
        self._size = 0
        #: Work counter accumulating distance evaluations of nearest-neighbour
        #: queries (one per visited node).
        self.counter = counter if counter is not None else WorkCounter()

    @property
    def size(self) -> int:
        """Number of points currently inserted."""
        return self._size

    @property
    def points(self) -> np.ndarray:
        """The rows addressable by :meth:`insert` (a read-only style view)."""
        return self._store[: self._n_rows]

    def append(self, point) -> int:
        """Add a brand-new point (dynamic mode) and return its index.

        Only available on trees created without a point matrix
        (``IncrementalKDTree(dim=d)``); the backing storage grows
        geometrically, so a long run of appends is amortized ``O(1)`` per
        point on top of the ``O(depth)`` tree insertion.
        """
        if not self._dynamic:
            raise RuntimeError(
                "append() requires a dynamic tree; construct with "
                "IncrementalKDTree(dim=...) instead of a point matrix"
            )
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        if point.shape[0] != self._dim:
            raise ValueError(
                f"point has dimension {point.shape[0]}, expected {self._dim}"
            )
        if not np.isfinite(point).all():
            raise ValueError("point contains NaN or infinite coordinates")
        if self._n_rows == self._store.shape[0]:
            capacity = max(8, 2 * self._store.shape[0])
            store = np.empty((capacity, self._dim), dtype=np.float64)
            store[: self._n_rows] = self._store[: self._n_rows]
            self._store = store
        index = self._n_rows
        self._store[index] = point
        self._n_rows += 1
        self.insert(index)
        return index

    def insert(self, index: int) -> None:
        """Insert the point ``self.points[index]`` into the tree."""
        index = int(index)
        if not 0 <= index < self._n_rows:
            raise IndexError(f"point index {index} out of range")
        point = self._store[index]
        if self._root is None:
            self._root = _IncNode(index=index, axis=0)
            self._size = 1
            return
        node = self._root
        while True:
            axis = node.axis
            if point[axis] < self._store[node.index, axis]:
                if node.left is None:
                    node.left = _IncNode(index=index, axis=(axis + 1) % self._dim)
                    break
                node = node.left
            else:
                if node.right is None:
                    node.right = _IncNode(index=index, axis=(axis + 1) % self._dim)
                    break
                node = node.right
        self._size += 1

    def nearest_neighbor(self, query) -> tuple[int, float]:
        """Return ``(index, distance)`` of the nearest inserted point to ``query``.

        Returns ``(-1, inf)`` when the tree is empty.  Exact distance ties
        resolve to the smallest point index and per-pair squared distances
        use the same canonical sequential arithmetic as the batch and dual
        kernels (see :func:`repro.utils.distance.point_to_points_sq`),
        so Ex-DPC's incremental dependency phase agrees bit for bit with the
        unified nearest-denser join of the other engines.
        """
        if self._root is None:
            return -1, np.inf
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self._dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, expected {self._dim}"
            )

        best_idx = -1
        best_sq = np.inf
        points = self._store
        counter = self.counter
        # The non-strict pruning comparison keeps equal-distance candidates
        # reachable, which makes the smallest-index tie-break independent of
        # traversal (insertion) order.
        stack: list[tuple[_IncNode, float]] = [(self._root, 0.0)]
        while stack:
            node, plane_sq = stack.pop()
            if plane_sq > best_sq:
                continue
            counter.add("distance_calcs", 1)
            coords = points[node.index]
            d_sq = float(point_to_points_sq(query, coords[None, :])[0])
            if d_sq < best_sq or (d_sq == best_sq and node.index < best_idx):
                best_sq = d_sq
                best_idx = node.index
            axis = node.axis
            diff = query[axis] - coords[axis]
            near, far = (node.left, node.right) if diff < 0.0 else (node.right, node.left)
            if far is not None:
                stack.append((far, diff * diff))
            if near is not None:
                stack.append((near, 0.0))
        return best_idx, float(np.sqrt(best_sq))

    def range_search(self, query, radius: float, strict: bool = True) -> np.ndarray:
        """Return the indices of inserted points within ``radius`` of ``query``.

        ``strict=True`` (the default, matching Definition 1 of the paper)
        reports points with ``dist < radius``; otherwise ``dist <= radius``.
        Results are sorted in ascending index order.  An empty tree returns an
        empty array.
        """
        radius = check_positive(radius, "radius")
        if self._root is None:
            return np.empty(0, dtype=np.intp)
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self._dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, expected {self._dim}"
            )
        radius_sq = radius * radius

        hits: list[int] = []
        points = self._store
        counter = self.counter
        stack: list[_IncNode] = [self._root]
        while stack:
            node = stack.pop()
            counter.add("distance_calcs", 1)
            coords = points[node.index]
            # Same per-pair arithmetic as the static tree's kernels so a
            # boundary point counts identically in both indexes (the
            # streaming layer's density repair relies on this).
            d_sq = float(point_to_points_sq(query, coords[None, :])[0])
            if (d_sq < radius_sq) if strict else (d_sq <= radius_sq):
                hits.append(node.index)
            axis = node.axis
            diff = query[axis] - coords[axis]
            near, far = (node.left, node.right) if diff < 0.0 else (node.right, node.left)
            if near is not None:
                stack.append(near)
            if far is not None and diff * diff <= radius_sq:
                stack.append(far)
        return np.asarray(sorted(hits), dtype=np.intp)

    def range_count(self, query, radius: float, strict: bool = True) -> int:
        """Return the number of inserted points within ``radius`` of ``query``."""
        return int(self.range_search(query, radius, strict=strict).size)
