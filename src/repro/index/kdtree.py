"""kd-tree implementations.

Two variants are provided, matching the two roles the kd-tree plays in the
paper:

``KDTree``
    A static, bulk-loaded kd-tree over a fixed point set.  Nodes are stored in
    flat numpy arrays; leaves hold small buckets of points so that the
    per-leaf distance computations are vectorised.  It answers

    * ``range_search(query, radius)`` / ``range_count(query, radius)`` --
      the primitive behind local-density computation (Lemma 1), and
    * ``nearest_neighbor(query, ...)`` / ``knn(query, k)`` -- used by the
      Approx-DPC exact-dependency fallback (case (i) of §4.3).

``IncrementalKDTree``
    A pointer-based kd-tree supporting one-point-at-a-time insertion.  Ex-DPC
    (§3) destroys the static tree, sorts points by descending local density
    and inserts them one by one; because the tree only ever contains points
    with *higher* density than the current query point, a plain nearest
    neighbour search returns the exact dependent point.

Both trees use the Euclidean metric and break ties by the smallest index.

Batch queries
-------------
Every scalar query on :class:`KDTree` has a vectorised batch counterpart --
``range_count_batch``, ``range_search_batch``, ``knn_batch`` and
``nearest_neighbor_batch``.  The batch methods traverse the tree
*iteratively*: an explicit stack holds ``(node, query-subset)`` frontier
entries, an internal node partitions its query subset between children with
one vectorised comparison, and a leaf evaluates all ``|subset| x |bucket|``
distances in a single numpy kernel.  Each tree node is therefore visited at
most once per batch call (with whatever query subset reaches it) instead of
once per query, which removes the per-point Python recursion that dominates
the scalar hot path.

The batch methods apply exactly the same per-query pruning rules and
identical per-pair arithmetic (``diff`` then a squared-norm ``einsum``) as
the scalar ones, so their results are bit-for-bit equal; the property suite
in ``tests/property/test_batch_equivalence.py`` locks that in.  Two
deliberate, documented normalisations keep results order-independent:
``range_search_batch`` returns each query's hit indices in ascending order
(the scalar method reports traversal order), and the nearest-neighbour
queries break exact distance ties by the smallest point index.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Mapping, Optional

import numpy as np

from repro.utils.counters import WorkCounter
from repro.utils.distance import point_to_points_sq
from repro.utils.validation import check_points, check_positive, check_positive_int

__all__ = ["KDTree", "KDTreeArrays", "IncrementalKDTree"]

_NO_CHILD = -1


@dataclass(frozen=True)
class KDTreeArrays:
    """Structure-of-arrays representation of a bulk-loaded kd-tree.

    The whole tree is seven contiguous numpy arrays: per-node split
    dimensions and values, child links, the ``[start, stop)`` bounds of each
    node's slice of the permutation array, and the permutation of point
    indices itself.  Node ``0`` is the root; children are stored in preorder
    (a node is allocated before its left subtree, which precedes its right
    subtree).  Leaves have ``left == right == -1`` and ``split_dim == -1``.

    Because the representation is plain arrays it can be placed in (or viewed
    from) a :mod:`multiprocessing.shared_memory` segment and reattached in a
    worker process with :meth:`KDTree.from_arrays` -- no pickling, no rebuild,
    zero copies.  The batch query kernels operate on these arrays directly.
    """

    split_dim: np.ndarray  #: per-node split dimension (``-1`` for leaves)
    split_val: np.ndarray  #: per-node split coordinate value
    left: np.ndarray  #: left child node id (``-1`` for leaves)
    right: np.ndarray  #: right child node id (``-1`` for leaves)
    start: np.ndarray  #: node bounds: first position in ``indices``
    stop: np.ndarray  #: node bounds: one past the last position in ``indices``
    indices: np.ndarray  #: permutation of point indices, leaf buckets contiguous

    @property
    def node_count(self) -> int:
        """Total number of tree nodes (internal + leaves)."""
        return int(self.split_dim.shape[0])

    @property
    def nbytes(self) -> int:
        """Total byte size of the seven arrays."""
        return int(sum(getattr(self, f.name).nbytes for f in fields(self)))

    def to_mapping(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Return the arrays as a flat ``{prefix + field: array}`` mapping."""
        return {prefix + f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[str, np.ndarray], prefix: str = ""
    ) -> "KDTreeArrays":
        """Rebuild the structure from a mapping produced by :meth:`to_mapping`."""
        return cls(**{f.name: mapping[prefix + f.name] for f in fields(cls)})

    def validate(self, points: np.ndarray, leaf_size: int) -> None:
        """Check the structural invariants of the flattened tree.

        Raises ``ValueError`` on the first violated invariant.  Used by the
        construction tests and available for debugging attached shared-memory
        views.
        """
        n, dim = points.shape
        if self.node_count < 1:
            raise ValueError("tree must have at least one node")
        if not np.array_equal(np.sort(self.indices), np.arange(n)):
            raise ValueError("indices is not a permutation of arange(n)")
        if int(self.start[0]) != 0 or int(self.stop[0]) != n:
            raise ValueError("root node does not cover [0, n)")
        visited = 0
        stack = [0]
        while stack:
            node = stack.pop()
            visited += 1
            lo, hi = int(self.start[node]), int(self.stop[node])
            if not 0 <= lo < hi <= n:
                raise ValueError(f"node {node} has invalid bounds [{lo}, {hi})")
            if int(self.left[node]) == _NO_CHILD:
                if int(self.right[node]) != _NO_CHILD:
                    raise ValueError(f"leaf {node} has a right child")
                if int(self.split_dim[node]) != -1:
                    raise ValueError(f"leaf {node} has a split dimension")
                coords = points[self.indices[lo:hi]]
                if hi - lo > leaf_size and np.any(
                    coords.max(axis=0) != coords.min(axis=0)
                ):
                    raise ValueError(
                        f"leaf {node} exceeds leaf_size without zero spread"
                    )
                continue
            left, right = int(self.left[node]), int(self.right[node])
            axis = int(self.split_dim[node])
            if not 0 <= axis < dim:
                raise ValueError(f"node {node} has invalid split dimension {axis}")
            for child in (left, right):
                if not 0 <= child < self.node_count:
                    raise ValueError(f"node {node} has out-of-range child {child}")
            if int(self.start[left]) != lo or int(self.stop[right]) != hi:
                raise ValueError(f"children of node {node} do not cover its bounds")
            if int(self.stop[left]) != int(self.start[right]):
                raise ValueError(f"children of node {node} are not contiguous")
            value = float(self.split_val[node])
            left_coords = points[self.indices[lo : int(self.stop[left])], axis]
            right_coords = points[self.indices[int(self.start[right]) : hi], axis]
            if left_coords.size == 0 or right_coords.size == 0:
                raise ValueError(f"node {node} has an empty child")
            if float(left_coords.max()) > value or float(right_coords.min()) < value:
                raise ValueError(f"node {node} violates the split-value invariant")
            stack.append(left)
            stack.append(right)
        if visited != self.node_count:
            raise ValueError(
                f"reachable nodes ({visited}) != node_count ({self.node_count})"
            )


def _build_tree_arrays(points: np.ndarray, leaf_size: int) -> KDTreeArrays:
    """Bulk-load the flattened kd-tree over ``points``.

    Nodes are allocated in preorder into preallocated arrays (a tree over
    ``n`` points has at most ``2n - 1`` nodes since every split produces two
    non-empty sides), then trimmed to the actual node count.
    """
    n = points.shape[0]
    capacity = max(1, 2 * n)
    split_dim = np.full(capacity, -1, dtype=np.intp)
    split_val = np.zeros(capacity, dtype=np.float64)
    left = np.full(capacity, _NO_CHILD, dtype=np.intp)
    right = np.full(capacity, _NO_CHILD, dtype=np.intp)
    start = np.zeros(capacity, dtype=np.intp)
    stop = np.zeros(capacity, dtype=np.intp)
    indices = np.arange(n, dtype=np.intp)

    n_nodes = 0

    def build(lo: int, hi: int) -> int:
        nonlocal n_nodes
        node = n_nodes
        n_nodes += 1
        count = hi - lo
        if count <= leaf_size:
            start[node] = lo
            stop[node] = hi
            return node

        subset = indices[lo:hi]
        coords = points[subset]
        spreads = coords.max(axis=0) - coords.min(axis=0)
        dim = int(np.argmax(spreads))
        if spreads[dim] == 0.0:
            # All points identical along every axis: keep them in one leaf to
            # avoid infinite recursion on duplicate-heavy data.
            start[node] = lo
            stop[node] = hi
            return node

        mid = count // 2
        order = np.argpartition(coords[:, dim], mid)
        indices[lo:hi] = subset[order]
        split_value = float(points[indices[lo + mid], dim])

        split_dim[node] = dim
        split_val[node] = split_value
        start[node] = lo
        stop[node] = hi
        left[node] = build(lo, lo + mid)
        right[node] = build(lo + mid, hi)
        return node

    build(0, n)
    return KDTreeArrays(
        split_dim=split_dim[:n_nodes].copy(),
        split_val=split_val[:n_nodes].copy(),
        left=left[:n_nodes].copy(),
        right=right[:n_nodes].copy(),
        start=start[:n_nodes].copy(),
        stop=stop[:n_nodes].copy(),
        indices=indices,
    )


class KDTree:
    """Static bulk-loaded kd-tree with bucket leaves.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``; a float64 copy is stored internally.
    leaf_size:
        Maximum number of points stored in a leaf bucket.  Larger leaves mean
        fewer Python-level node visits and more vectorised work per leaf; the
        default of 32 is a good compromise for the 2--8 dimensional data used
        throughout the paper.

    Notes
    -----
    The classic analysis gives ``O(n^{1-1/d} + k)`` time for a range search
    reporting ``k`` points [Toth et al., Handbook of Discrete and Computational
    Geometry], which is the bound the paper's Lemma 1 builds on.
    """

    def __init__(self, points, leaf_size: int = 32, counter: WorkCounter | None = None):
        self._points = check_points(points, name="points")
        self._leaf_size = check_positive_int(leaf_size, "leaf_size")
        self._n, self._dim = self._points.shape
        #: Work counter accumulating distance evaluations and node visits
        #: performed by queries on this tree.
        self.counter = counter if counter is not None else WorkCounter()
        self._arrays = _build_tree_arrays(self._points, self._leaf_size)
        self._bind_arrays()

    def _bind_arrays(self) -> None:
        """Expose the structure-of-arrays fields under the query-code aliases."""
        arrays = self._arrays
        self._split_dim_arr = arrays.split_dim
        self._split_val_arr = arrays.split_val
        self._left_arr = arrays.left
        self._right_arr = arrays.right
        self._start_arr = arrays.start
        self._stop_arr = arrays.stop
        self._indices = arrays.indices
        self._root = 0

    @classmethod
    def from_arrays(
        cls,
        points,
        arrays: KDTreeArrays,
        *,
        leaf_size: int = 32,
        counter: WorkCounter | None = None,
        validate: bool = False,
    ) -> "KDTree":
        """Wrap an existing flattened tree without rebuilding it.

        ``points`` and ``arrays`` are adopted as-is (typically zero-copy views
        over a shared-memory segment attached by a worker process); no data is
        copied and no O(n log n) build runs.  Pass ``validate=True`` to check
        the structural invariants of ``arrays`` first.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("points must be a 2-D array")
        tree = cls.__new__(cls)
        tree._points = points
        tree._leaf_size = check_positive_int(leaf_size, "leaf_size")
        tree._n, tree._dim = points.shape
        tree.counter = counter if counter is not None else WorkCounter()
        tree._arrays = arrays
        if validate:
            arrays.validate(points, tree._leaf_size)
        tree._bind_arrays()
        return tree

    # ------------------------------------------------------------- properties

    @property
    def arrays(self) -> KDTreeArrays:
        """The flattened structure-of-arrays form of the tree."""
        return self._arrays

    @property
    def points(self) -> np.ndarray:
        """The indexed point set (read-only view)."""
        return self._points

    @property
    def size(self) -> int:
        """Number of indexed points."""
        return self._n

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self._dim

    @property
    def leaf_size(self) -> int:
        """Maximum bucket size of a leaf."""
        return self._leaf_size

    @property
    def node_count(self) -> int:
        """Total number of tree nodes (internal + leaves)."""
        return self._arrays.node_count

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the index structure in bytes.

        Counts the flattened node arrays and the permutation array but not the
        point matrix itself (which is shared with the caller).
        """
        return self._arrays.nbytes

    # ---------------------------------------------------------------- queries

    def _is_leaf(self, node: int) -> bool:
        return self._left_arr[node] == _NO_CHILD

    def range_search(self, query, radius: float, strict: bool = True) -> np.ndarray:
        """Return the indices of all points within ``radius`` of ``query``.

        Parameters
        ----------
        query:
            Query point of shape ``(d,)``.
        radius:
            Search radius (must be positive).
        strict:
            When true (the default, matching Definition 1 of the paper) report
            points with ``dist < radius``; otherwise ``dist <= radius``.
        """
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self._dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, expected {self._dim}"
            )
        radius = check_positive(radius, "radius")
        radius_sq = radius * radius

        hits: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if self._is_leaf(node):
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size == 0:
                    continue
                self.counter.add("distance_calcs", idx.size)
                d_sq = point_to_points_sq(query, self._points[idx])
                mask = d_sq < radius_sq if strict else d_sq <= radius_sq
                if mask.any():
                    hits.append(idx[mask])
                continue
            dim = self._split_dim_arr[node]
            diff = query[dim] - self._split_val_arr[node]
            near, far = (
                (self._left_arr[node], self._right_arr[node])
                if diff < 0.0
                else (self._right_arr[node], self._left_arr[node])
            )
            stack.append(near)
            if diff * diff <= radius_sq:
                stack.append(far)

        if not hits:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(hits)

    def range_count(self, query, radius: float, strict: bool = True) -> int:
        """Return the number of points within ``radius`` of ``query``.

        Equivalent to ``len(range_search(...))`` but avoids materialising the
        index list; this is the primitive used for local-density computation.
        """
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self._dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, expected {self._dim}"
            )
        radius = check_positive(radius, "radius")
        radius_sq = radius * radius

        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if self._is_leaf(node):
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size == 0:
                    continue
                self.counter.add("distance_calcs", idx.size)
                d_sq = point_to_points_sq(query, self._points[idx])
                if strict:
                    count += int(np.count_nonzero(d_sq < radius_sq))
                else:
                    count += int(np.count_nonzero(d_sq <= radius_sq))
                continue
            dim = self._split_dim_arr[node]
            diff = query[dim] - self._split_val_arr[node]
            near, far = (
                (self._left_arr[node], self._right_arr[node])
                if diff < 0.0
                else (self._right_arr[node], self._left_arr[node])
            )
            stack.append(near)
            if diff * diff <= radius_sq:
                stack.append(far)
        return count

    def nearest_neighbor(
        self,
        query,
        *,
        exclude: Optional[int] = None,
        mask: Optional[np.ndarray] = None,
    ) -> tuple[int, float]:
        """Return ``(index, distance)`` of the nearest indexed point to ``query``.

        Parameters
        ----------
        query:
            Query point of shape ``(d,)``.
        exclude:
            Optional index to ignore (typically the query point itself when it
            is part of the indexed set).
        mask:
            Optional boolean array of length ``n``; only points with
            ``mask[i] == True`` are eligible.  Used by the Approx-DPC exact
            fallback, which restricts the search to points with higher local
            density.

        Returns
        -------
        tuple
            ``(index, distance)``; ``index`` is ``-1`` and ``distance`` is
            ``inf`` when no eligible point exists.
        """
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self._dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, expected {self._dim}"
            )
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape[0] != self._n:
                raise ValueError("mask must have one entry per indexed point")

        best_idx = -1
        best_sq = np.inf
        # Depth-first traversal ordered by the near child first; prune subtrees
        # whose splitting plane is strictly farther than the current best
        # distance.  The non-strict comparison keeps equal-distance candidates
        # reachable so the smallest-index tie-break is traversal-order
        # independent (and therefore identical to ``nearest_neighbor_batch``).
        stack: list[tuple[int, float]] = [(self._root, 0.0)]
        while stack:
            node, plane_sq = stack.pop()
            if plane_sq > best_sq:
                continue
            if self._is_leaf(node):
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size == 0:
                    continue
                self.counter.add("distance_calcs", idx.size)
                d_sq = point_to_points_sq(query, self._points[idx])
                if exclude is not None:
                    d_sq = np.where(idx == exclude, np.inf, d_sq)
                if mask is not None:
                    d_sq = np.where(mask[idx], d_sq, np.inf)
                pos = int(np.lexsort((idx, d_sq))[0])
                if d_sq[pos] < best_sq or (
                    d_sq[pos] == best_sq and int(idx[pos]) < best_idx
                ):
                    best_sq = float(d_sq[pos])
                    best_idx = int(idx[pos])
                continue
            dim = self._split_dim_arr[node]
            diff = query[dim] - self._split_val_arr[node]
            near, far = (
                (self._left_arr[node], self._right_arr[node])
                if diff < 0.0
                else (self._right_arr[node], self._left_arr[node])
            )
            # Push the far child first so the near child is explored first.
            stack.append((far, diff * diff))
            stack.append((near, 0.0))
        return best_idx, float(np.sqrt(best_sq)) if np.isfinite(best_sq) else np.inf

    def knn(self, query, k: int, *, exclude: Optional[int] = None) -> tuple[np.ndarray, np.ndarray]:
        """Return the ``k`` nearest neighbours of ``query``.

        Returns
        -------
        tuple
            ``(indices, distances)`` sorted by increasing distance.  Fewer than
            ``k`` entries are returned when the tree holds fewer eligible
            points.
        """
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        k = check_positive_int(k, "k")
        if query.shape[0] != self._dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, expected {self._dim}"
            )

        # Collect candidate (distance, index) pairs with a simple bounded list;
        # k is small in every caller (the dependency fallback uses k=1..8).
        best_sq = np.full(k, np.inf)
        best_idx = np.full(k, -1, dtype=np.intp)

        stack: list[tuple[int, float]] = [(self._root, 0.0)]
        while stack:
            node, plane_sq = stack.pop()
            if plane_sq > best_sq[-1]:
                continue
            if self._is_leaf(node):
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size == 0:
                    continue
                self.counter.add("distance_calcs", idx.size)
                d_sq = point_to_points_sq(query, self._points[idx])
                if exclude is not None:
                    d_sq = np.where(idx == exclude, np.inf, d_sq)
                merged_sq = np.concatenate([best_sq, d_sq])
                merged_idx = np.concatenate([best_idx, idx])
                # Lexicographic (distance, index) order: exact distance ties
                # resolve to the smallest index regardless of traversal order,
                # matching knn_batch bit for bit.
                order = np.lexsort((merged_idx, merged_sq))[:k]
                best_sq = merged_sq[order]
                best_idx = merged_idx[order]
                continue
            dim = self._split_dim_arr[node]
            diff = query[dim] - self._split_val_arr[node]
            near, far = (
                (self._left_arr[node], self._right_arr[node])
                if diff < 0.0
                else (self._right_arr[node], self._left_arr[node])
            )
            stack.append((far, diff * diff))
            stack.append((near, 0.0))

        valid = best_idx >= 0
        return best_idx[valid], np.sqrt(best_sq[valid])

    # ---------------------------------------------------------- batch queries

    def _check_query_batch(self, queries) -> np.ndarray:
        """Validate a ``(q, d)`` query batch (a bare ``(d,)`` vector is promoted)."""
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1 and queries.shape[0] == self._dim:
            queries = queries.reshape(1, -1)
        if queries.size == 0:
            return queries.reshape(0, self._dim)
        if queries.ndim != 2 or queries.shape[1] != self._dim:
            raise ValueError(
                f"queries must have shape (q, {self._dim}), got {queries.shape}"
            )
        return queries

    def _check_radius_sq_batch(self, radius, n_queries: int) -> np.ndarray:
        """Return per-query *squared* radii from a scalar or length-q array."""
        radius_arr = np.asarray(radius, dtype=np.float64)
        if radius_arr.ndim == 0:
            radius_value = check_positive(float(radius_arr), "radius")
            radius_arr = np.full(n_queries, radius_value)
        else:
            radius_arr = radius_arr.reshape(-1)
            if radius_arr.shape[0] != n_queries:
                raise ValueError(
                    f"radius must be a scalar or have one entry per query "
                    f"({n_queries}), got {radius_arr.shape[0]}"
                )
            if radius_arr.size and float(radius_arr.min()) <= 0.0:
                raise ValueError("every radius must be positive")
        return radius_arr * radius_arr

    def _leaf_distances_sq(self, queries_sub: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Squared distances from every query in the subset to every leaf point.

        Uses the same ``diff``-then-``einsum`` arithmetic as the scalar
        :func:`repro.utils.distance.point_to_points_sq`, so every pair produces
        the bit-identical squared distance in both code paths.
        """
        diff = queries_sub[:, None, :] - self._points[idx][None, :, :]
        return np.einsum("qjd,qjd->qj", diff, diff)

    def _range_traverse_batch(self, queries, radius_sq, on_leaf) -> None:
        """Shared frontier traversal of the batch range queries.

        ``on_leaf(qidx, idx, hits)`` receives the query subset that reached the
        leaf, the leaf's point indices and the boolean hit matrix.  The child
        routing replicates the scalar rule per query: the near side is always
        visited and the far side only when the splitting plane is within the
        query radius, so the set of visited ``(node, query)`` pairs -- and the
        recorded distance-calculation counts -- match the scalar methods
        exactly.
        """
        stack: list[tuple[int, np.ndarray]] = [
            (self._root, np.arange(queries.shape[0], dtype=np.intp))
        ]
        while stack:
            node, qidx = stack.pop()
            if self._is_leaf(node):
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size == 0:
                    continue
                self.counter.add("distance_calcs", float(qidx.size) * float(idx.size))
                d_sq = self._leaf_distances_sq(queries[qidx], idx)
                on_leaf(qidx, idx, d_sq)
                continue
            dim = self._split_dim_arr[node]
            diff = queries[qidx, dim] - self._split_val_arr[node]
            within = diff * diff <= radius_sq[qidx]
            left_q = qidx[(diff < 0.0) | within]
            right_q = qidx[(diff >= 0.0) | within]
            if left_q.size:
                stack.append((self._left_arr[node], left_q))
            if right_q.size:
                stack.append((self._right_arr[node], right_q))

    def range_count_batch(self, queries, radius, strict: bool = True) -> np.ndarray:
        """Vectorised batch counterpart of :meth:`range_count`.

        Parameters
        ----------
        queries:
            Array of shape ``(q, d)``; an empty batch returns an empty array.
        radius:
            Scalar radius shared by every query, or an array of ``q`` per-query
            radii (Approx-DPC's joint range search uses per-cell radii).
        strict:
            Count ``dist < radius`` when true (Definition 1), else
            ``dist <= radius``.

        Returns
        -------
        numpy.ndarray
            Integer counts, one per query, identical to calling
            :meth:`range_count` per point.
        """
        queries = self._check_query_batch(queries)
        n_queries = queries.shape[0]
        radius_sq = self._check_radius_sq_batch(radius, n_queries)
        counts = np.zeros(n_queries, dtype=np.intp)
        if n_queries == 0:
            return counts

        def on_leaf(qidx: np.ndarray, idx: np.ndarray, d_sq: np.ndarray) -> None:
            bound = radius_sq[qidx, None]
            hits = d_sq < bound if strict else d_sq <= bound
            counts[qidx] += hits.sum(axis=1)

        self._range_traverse_batch(queries, radius_sq, on_leaf)
        return counts

    def range_search_batch(
        self, queries, radius, strict: bool = True
    ) -> list[np.ndarray]:
        """Vectorised batch counterpart of :meth:`range_search`.

        Returns one index array per query holding the same point set as the
        scalar method, but sorted in ascending index order (the scalar method
        reports hits in traversal order, which is an implementation detail).
        ``radius`` may be a scalar or an array of per-query radii.
        """
        queries = self._check_query_batch(queries)
        n_queries = queries.shape[0]
        radius_sq = self._check_radius_sq_batch(radius, n_queries)
        results: list[np.ndarray] = [
            np.empty(0, dtype=np.intp) for _ in range(n_queries)
        ]
        if n_queries == 0:
            return results
        hit_queries: list[np.ndarray] = []
        hit_points: list[np.ndarray] = []

        def on_leaf(qidx: np.ndarray, idx: np.ndarray, d_sq: np.ndarray) -> None:
            bound = radius_sq[qidx, None]
            hits = d_sq < bound if strict else d_sq <= bound
            rows, cols = np.nonzero(hits)
            if rows.size:
                hit_queries.append(qidx[rows])
                hit_points.append(idx[cols])

        self._range_traverse_batch(queries, radius_sq, on_leaf)
        if not hit_queries:
            return results
        all_queries = np.concatenate(hit_queries)
        all_points = np.concatenate(hit_points)
        order = np.argsort(all_queries, kind="stable")
        all_queries = all_queries[order]
        all_points = all_points[order]
        boundaries = np.searchsorted(all_queries, np.arange(n_queries + 1))
        for query in range(n_queries):
            start, stop = boundaries[query], boundaries[query + 1]
            if stop > start:
                results[query] = np.sort(all_points[start:stop])
        return results

    def _knn_batch_impl(
        self,
        queries: np.ndarray,
        k: int,
        exclude: Optional[np.ndarray],
        mask: Optional[np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Frontier-based batch k-nearest-neighbour search.

        Returns ``(indices, squared_distances)`` of shape ``(q, k)`` padded
        with ``-1`` / ``inf``.  Exact distance ties are broken by the smallest
        index, which (together with the non-strict pruning test) makes the
        result independent of traversal order and therefore identical to the
        scalar methods.
        """
        n_queries = queries.shape[0]
        best_sq = np.full((n_queries, k), np.inf)
        best_idx = np.full((n_queries, k), -1, dtype=np.intp)
        if n_queries == 0:
            return best_idx, best_sq

        # Leaf node each query was routed to by the seeding pass; refinement
        # skips that (query, leaf) pair so no leaf is merged twice per query.
        home_leaf = np.full(n_queries, -1, dtype=np.intp)

        def merge_leaf(qidx: np.ndarray, idx: np.ndarray, node: int = -1) -> None:
            """Fold one leaf's distance block into the per-query best arrays."""
            if node >= 0:
                fresh = home_leaf[qidx] != node
                if not fresh.all():
                    qidx = qidx[fresh]
                    if qidx.size == 0:
                        return
            self.counter.add("distance_calcs", float(qidx.size) * float(idx.size))
            d_sq = self._leaf_distances_sq(queries[qidx], idx)
            if exclude is not None:
                d_sq = np.where(idx[None, :] == exclude[qidx][:, None], np.inf, d_sq)
            if mask is not None:
                d_sq = np.where(mask[idx][None, :], d_sq, np.inf)
            # Merge only the rows this leaf can actually improve (or tie,
            # which may still lower the winning index).
            improving = d_sq.min(axis=1) <= best_sq[qidx, -1]
            if not improving.any():
                return
            rows = qidx[improving]
            d_sq = d_sq[improving]
            merged_sq = np.concatenate([best_sq[rows], d_sq], axis=1)
            merged_idx = np.concatenate(
                [best_idx[rows], np.broadcast_to(idx, (rows.size, idx.size))],
                axis=1,
            )
            # Lexicographic (distance, index) order: exact distance ties
            # resolve to the smallest index regardless of traversal order,
            # matching the scalar methods bit for bit.
            order = np.lexsort((merged_idx, merged_sq), axis=-1)[:, :k]
            best_sq[rows] = np.take_along_axis(merged_sq, order, axis=1)
            best_idx[rows] = np.take_along_axis(merged_idx, order, axis=1)

        # Seeding pass: route every query to its home leaf (near side only,
        # so the subsets partition and each node is visited at most once) and
        # initialise the best arrays from that leaf's bucket.  This tightens
        # the pruning bounds before the refinement pass starts, which keeps
        # the far-side frontier small; it only ever lowers bounds, so the
        # refinement pass still visits every node the scalar search would.
        seed_stack: list[tuple[int, np.ndarray]] = [
            (self._root, np.arange(n_queries, dtype=np.intp))
        ]
        while seed_stack:
            node, qidx = seed_stack.pop()
            if self._is_leaf(node):
                home_leaf[qidx] = node
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size:
                    merge_leaf(qidx, idx)
                continue
            diff = queries[qidx, self._split_dim_arr[node]] - self._split_val_arr[node]
            on_left = diff < 0.0
            if on_left.any():
                seed_stack.append((self._left_arr[node], qidx[on_left]))
            if not on_left.all():
                seed_stack.append((self._right_arr[node], qidx[~on_left]))

        stack: list[tuple[int, np.ndarray, np.ndarray]] = [
            (self._root, np.arange(n_queries, dtype=np.intp), np.zeros(n_queries))
        ]
        while stack:
            node, qidx, plane_sq = stack.pop()
            # Bounds may have tightened since this entry was pushed; the
            # non-strict comparison keeps equal-distance candidates reachable
            # so the smallest-index tie-break is traversal-order independent.
            alive = plane_sq <= best_sq[qidx, -1]
            if not alive.all():
                qidx = qidx[alive]
                plane_sq = plane_sq[alive]
            if qidx.size == 0:
                continue
            if self._is_leaf(node):
                idx = self._indices[self._start_arr[node] : self._stop_arr[node]]
                if idx.size:
                    merge_leaf(qidx, idx, node)
                continue
            dim = self._split_dim_arr[node]
            diff = queries[qidx, dim] - self._split_val_arr[node]
            diff_sq = diff * diff
            bound = best_sq[qidx, -1]
            on_left = diff < 0.0
            left_take = on_left | (diff_sq <= bound)
            right_take = ~on_left | (diff_sq <= bound)
            # Pop order is LIFO: push the child that is the far side for the
            # majority of queries first, so most queries explore their near
            # side first and tighten the pruning bound early.
            left_first = np.count_nonzero(on_left) * 2 >= qidx.size
            children = (
                (
                    (self._right_arr[node], right_take, np.where(on_left, diff_sq, 0.0)),
                    (self._left_arr[node], left_take, np.where(on_left, 0.0, diff_sq)),
                )
                if left_first
                else (
                    (self._left_arr[node], left_take, np.where(on_left, 0.0, diff_sq)),
                    (self._right_arr[node], right_take, np.where(on_left, diff_sq, 0.0)),
                )
            )
            for child, take, child_plane in children:
                if take.all():
                    stack.append((child, qidx, child_plane))
                elif take.any():
                    stack.append((child, qidx[take], child_plane[take]))
        return best_idx, best_sq

    def knn_batch(
        self, queries, k: int, *, exclude: Optional[np.ndarray] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised batch counterpart of :meth:`knn`.

        Parameters
        ----------
        queries:
            Array of shape ``(q, d)``.
        k:
            Number of neighbours per query.
        exclude:
            Optional array of ``q`` point indices, one per query, to ignore
            (typically the query points themselves).

        Returns
        -------
        tuple
            ``(indices, distances)`` of shape ``(q, k)`` sorted by increasing
            distance per row, ties broken by the smallest index.  When a query
            has fewer than ``k`` eligible neighbours the trailing slots hold
            ``-1`` / ``inf`` (the scalar :meth:`knn` trims them instead).
        """
        queries = self._check_query_batch(queries)
        k = check_positive_int(k, "k")
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.intp).reshape(-1)
            if exclude.shape[0] != queries.shape[0]:
                raise ValueError("exclude must hold one point index per query")
        best_idx, best_sq = self._knn_batch_impl(queries, k, exclude, None)
        return best_idx, np.sqrt(best_sq)

    def nearest_neighbor_batch(
        self,
        queries,
        *,
        exclude: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised batch counterpart of :meth:`nearest_neighbor`.

        ``exclude`` is an optional array of one point index per query;
        ``mask`` is the same per-point eligibility array the scalar method
        accepts (shared by every query in the batch).  Returns ``(indices,
        distances)`` arrays of length ``q`` with ``-1`` / ``inf`` for queries
        with no eligible neighbour.
        """
        queries = self._check_query_batch(queries)
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.intp).reshape(-1)
            if exclude.shape[0] != queries.shape[0]:
                raise ValueError("exclude must hold one point index per query")
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape[0] != self._n:
                raise ValueError("mask must have one entry per indexed point")
        best_idx, best_sq = self._knn_batch_impl(queries, 1, exclude, mask)
        return best_idx[:, 0], np.sqrt(best_sq[:, 0])


class _IncNode:
    """A node of the pointer-based incremental kd-tree."""

    __slots__ = ("index", "axis", "left", "right")

    def __init__(self, index: int, axis: int):
        self.index = index
        self.axis = axis
        self.left: Optional["_IncNode"] = None
        self.right: Optional["_IncNode"] = None


class IncrementalKDTree:
    """Pointer-based kd-tree supporting one-point-at-a-time insertion.

    Ex-DPC builds this tree incrementally in descending order of local
    density: when the dependent point of ``p_i`` is requested, the tree
    contains exactly the points with higher density than ``rho_i``, so a plain
    nearest-neighbour query yields the exact dependent point (§3).

    The tree cycles the split axis with depth (the classic Bentley insertion
    scheme).  Insertion order in Ex-DPC is essentially random with respect to
    the coordinates, so the expected depth stays ``O(log n)``.

    Two storage modes are supported:

    * **static** (``points`` given): the classic Ex-DPC mode -- the full point
      matrix exists up front and :meth:`insert` adds rows by index;
    * **dynamic** (``points=None, dim=d``): the tree owns a growable matrix
      and :meth:`append` adds brand-new points one at a time.  This is the
      *hot buffer* of the streaming layer (:mod:`repro.stream`): freshly
      ingested points are appended here between the amortized rebuilds of the
      static :class:`KDTree`.
    """

    def __init__(
        self,
        points=None,
        dim: int | None = None,
        counter: WorkCounter | None = None,
    ):
        if points is None:
            if dim is None:
                raise ValueError("dim is required when no point matrix is given")
            self._dim = check_positive_int(dim, "dim")
            self._store = np.empty((0, self._dim), dtype=np.float64)
            self._n_rows = 0
            self._dynamic = True
        else:
            self._store = check_points(points, name="points")
            self._dim = self._store.shape[1] if dim is None else int(dim)
            if self._dim != self._store.shape[1]:
                raise ValueError("dim does not match the point matrix width")
            self._n_rows = self._store.shape[0]
            self._dynamic = False
        self._root: Optional[_IncNode] = None
        self._size = 0
        #: Work counter accumulating distance evaluations of nearest-neighbour
        #: queries (one per visited node).
        self.counter = counter if counter is not None else WorkCounter()

    @property
    def size(self) -> int:
        """Number of points currently inserted."""
        return self._size

    @property
    def points(self) -> np.ndarray:
        """The rows addressable by :meth:`insert` (a read-only style view)."""
        return self._store[: self._n_rows]

    def append(self, point) -> int:
        """Add a brand-new point (dynamic mode) and return its index.

        Only available on trees created without a point matrix
        (``IncrementalKDTree(dim=d)``); the backing storage grows
        geometrically, so a long run of appends is amortized ``O(1)`` per
        point on top of the ``O(depth)`` tree insertion.
        """
        if not self._dynamic:
            raise RuntimeError(
                "append() requires a dynamic tree; construct with "
                "IncrementalKDTree(dim=...) instead of a point matrix"
            )
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        if point.shape[0] != self._dim:
            raise ValueError(
                f"point has dimension {point.shape[0]}, expected {self._dim}"
            )
        if not np.isfinite(point).all():
            raise ValueError("point contains NaN or infinite coordinates")
        if self._n_rows == self._store.shape[0]:
            capacity = max(8, 2 * self._store.shape[0])
            store = np.empty((capacity, self._dim), dtype=np.float64)
            store[: self._n_rows] = self._store[: self._n_rows]
            self._store = store
        index = self._n_rows
        self._store[index] = point
        self._n_rows += 1
        self.insert(index)
        return index

    def insert(self, index: int) -> None:
        """Insert the point ``self.points[index]`` into the tree."""
        index = int(index)
        if not 0 <= index < self._n_rows:
            raise IndexError(f"point index {index} out of range")
        point = self._store[index]
        if self._root is None:
            self._root = _IncNode(index=index, axis=0)
            self._size = 1
            return
        node = self._root
        while True:
            axis = node.axis
            if point[axis] < self._store[node.index, axis]:
                if node.left is None:
                    node.left = _IncNode(index=index, axis=(axis + 1) % self._dim)
                    break
                node = node.left
            else:
                if node.right is None:
                    node.right = _IncNode(index=index, axis=(axis + 1) % self._dim)
                    break
                node = node.right
        self._size += 1

    def nearest_neighbor(self, query) -> tuple[int, float]:
        """Return ``(index, distance)`` of the nearest inserted point to ``query``.

        Returns ``(-1, inf)`` when the tree is empty.
        """
        if self._root is None:
            return -1, np.inf
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self._dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, expected {self._dim}"
            )

        best_idx = -1
        best_sq = np.inf
        points = self._store
        counter = self.counter
        stack: list[tuple[_IncNode, float]] = [(self._root, 0.0)]
        while stack:
            node, plane_sq = stack.pop()
            if plane_sq >= best_sq:
                continue
            counter.add("distance_calcs", 1)
            coords = points[node.index]
            diff_vec = coords - query
            d_sq = float(np.dot(diff_vec, diff_vec))
            if d_sq < best_sq:
                best_sq = d_sq
                best_idx = node.index
            axis = node.axis
            diff = query[axis] - coords[axis]
            near, far = (node.left, node.right) if diff < 0.0 else (node.right, node.left)
            if far is not None:
                stack.append((far, diff * diff))
            if near is not None:
                stack.append((near, 0.0))
        return best_idx, float(np.sqrt(best_sq))

    def range_search(self, query, radius: float, strict: bool = True) -> np.ndarray:
        """Return the indices of inserted points within ``radius`` of ``query``.

        ``strict=True`` (the default, matching Definition 1 of the paper)
        reports points with ``dist < radius``; otherwise ``dist <= radius``.
        Results are sorted in ascending index order.  An empty tree returns an
        empty array.
        """
        radius = check_positive(radius, "radius")
        if self._root is None:
            return np.empty(0, dtype=np.intp)
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self._dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, expected {self._dim}"
            )
        radius_sq = radius * radius

        hits: list[int] = []
        points = self._store
        counter = self.counter
        stack: list[_IncNode] = [self._root]
        while stack:
            node = stack.pop()
            counter.add("distance_calcs", 1)
            coords = points[node.index]
            diff_vec = coords - query
            d_sq = float(np.dot(diff_vec, diff_vec))
            if (d_sq < radius_sq) if strict else (d_sq <= radius_sq):
                hits.append(node.index)
            axis = node.axis
            diff = query[axis] - coords[axis]
            near, far = (node.left, node.right) if diff < 0.0 else (node.right, node.left)
            if near is not None:
                stack.append(near)
            if far is not None and diff * diff <= radius_sq:
                stack.append(far)
        return np.asarray(sorted(hits), dtype=np.intp)

    def range_count(self, query, radius: float, strict: bool = True) -> int:
        """Return the number of inserted points within ``radius`` of ``query``."""
        return int(self.range_search(query, radius, strict=strict).size)
