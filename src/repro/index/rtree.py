"""A bulk-loaded R-tree for point data.

The paper evaluates an ``R-tree + Scan`` baseline in which local densities are
computed with range searches on an in-memory R-tree while dependent points are
still computed by the quadratic Scan procedure.  This module provides that
R-tree.

The tree is built with the Sort-Tile-Recursive (STR) bulk-loading algorithm
[Leutenegger et al. 1997]: points are sorted into tiles along each dimension in
turn so that each leaf covers a compact rectangle, and internal levels are
built bottom-up by grouping child bounding boxes the same way.  STR produces
well-clustered rectangles for static point sets, which is all the baseline
needs (the paper notes the R-tree lacks the kd-tree's worst-case guarantee but
works well in practice).
"""

from __future__ import annotations

import numpy as np

from repro.utils.counters import WorkCounter
from repro.utils.distance import point_to_points_sq
from repro.utils.validation import check_points, check_positive, check_positive_int

__all__ = ["RTree"]


class _Node:
    """An R-tree node: either a leaf with point indices or an internal node."""

    __slots__ = ("mins", "maxs", "children", "indices")

    def __init__(self, mins, maxs, children=None, indices=None):
        self.mins = mins
        self.maxs = maxs
        self.children = children
        self.indices = indices

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None


def _min_sq_dist_to_box(query: np.ndarray, mins: np.ndarray, maxs: np.ndarray) -> float:
    """Squared distance from ``query`` to the axis-aligned box ``[mins, maxs]``."""
    below = np.maximum(mins - query, 0.0)
    above = np.maximum(query - maxs, 0.0)
    gap = below + above
    return float(np.dot(gap, gap))


class RTree:
    """STR bulk-loaded R-tree over a static point set.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    leaf_capacity:
        Maximum number of points per leaf.
    fanout:
        Maximum number of children per internal node.
    """

    def __init__(
        self,
        points,
        leaf_capacity: int = 64,
        fanout: int = 16,
        counter: WorkCounter | None = None,
    ):
        self._points = check_points(points, name="points")
        #: Work counter accumulating distance evaluations performed by queries.
        self.counter = counter if counter is not None else WorkCounter()
        self._leaf_capacity = check_positive_int(leaf_capacity, "leaf_capacity")
        self._fanout = check_positive_int(fanout, "fanout")
        if self._fanout < 2:
            raise ValueError("fanout must be at least 2")
        self._n, self._dim = self._points.shape
        self._node_count = 0
        self._root = self._bulk_load()

    # ------------------------------------------------------------------ build

    def _make_leaf(self, indices: np.ndarray) -> _Node:
        coords = self._points[indices]
        self._node_count += 1
        return _Node(
            mins=coords.min(axis=0),
            maxs=coords.max(axis=0),
            indices=np.asarray(indices, dtype=np.intp),
        )

    def _make_internal(self, children: list[_Node]) -> _Node:
        mins = np.min([child.mins for child in children], axis=0)
        maxs = np.max([child.maxs for child in children], axis=0)
        self._node_count += 1
        return _Node(mins=mins, maxs=maxs, children=children)

    def _str_partition(self, items, centers: np.ndarray, capacity: int) -> list[list]:
        """Partition ``items`` into groups of at most ``capacity`` using STR tiling."""
        count = len(items)
        groups = int(np.ceil(count / capacity))
        if groups <= 1:
            return [list(items)]

        order = np.argsort(centers[:, 0], kind="stable")
        items = [items[i] for i in order]
        centers = centers[order]

        if self._dim == 1:
            return [
                items[start : start + capacity] for start in range(0, count, capacity)
            ]

        # Number of vertical slabs along the first dimension.
        slabs = int(np.ceil(np.sqrt(groups)))
        slab_size = int(np.ceil(count / slabs))
        partition: list[list] = []
        for start in range(0, count, slab_size):
            slab_items = items[start : start + slab_size]
            slab_centers = centers[start : start + slab_size]
            inner = np.argsort(slab_centers[:, 1], kind="stable")
            slab_items = [slab_items[i] for i in inner]
            for inner_start in range(0, len(slab_items), capacity):
                partition.append(slab_items[inner_start : inner_start + capacity])
        return partition

    def _bulk_load(self) -> _Node:
        indices = np.arange(self._n, dtype=np.intp)
        leaf_groups = self._str_partition(
            list(indices), self._points, self._leaf_capacity
        )
        nodes = [self._make_leaf(np.asarray(group, dtype=np.intp)) for group in leaf_groups]

        while len(nodes) > 1:
            centers = np.asarray([(node.mins + node.maxs) / 2.0 for node in nodes])
            groups = self._str_partition(nodes, centers, self._fanout)
            nodes = [self._make_internal(group) for group in groups]
        return nodes[0]

    # ------------------------------------------------------------- properties

    @property
    def size(self) -> int:
        """Number of indexed points."""
        return self._n

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self._dim

    @property
    def node_count(self) -> int:
        """Total number of R-tree nodes."""
        return self._node_count

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the index structure in bytes."""
        per_node = 2 * self._dim * 8 + 64  # two bounding vectors + object overhead
        return int(self._node_count * per_node + self._n * np.dtype(np.intp).itemsize)

    # ---------------------------------------------------------------- queries

    def range_search(self, query, radius: float, strict: bool = True) -> np.ndarray:
        """Return the indices of all points within ``radius`` of ``query``."""
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self._dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, expected {self._dim}"
            )
        radius = check_positive(radius, "radius")
        radius_sq = radius * radius

        hits: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if _min_sq_dist_to_box(query, node.mins, node.maxs) > radius_sq:
                continue
            if node.is_leaf:
                idx = node.indices
                self.counter.add("distance_calcs", idx.size)
                d_sq = point_to_points_sq(query, self._points[idx])
                mask = d_sq < radius_sq if strict else d_sq <= radius_sq
                if mask.any():
                    hits.append(idx[mask])
            else:
                stack.extend(node.children)
        if not hits:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(hits)

    def range_count(self, query, radius: float, strict: bool = True) -> int:
        """Return the number of points within ``radius`` of ``query``."""
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self._dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, expected {self._dim}"
            )
        radius = check_positive(radius, "radius")
        radius_sq = radius * radius

        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if _min_sq_dist_to_box(query, node.mins, node.maxs) > radius_sq:
                continue
            if node.is_leaf:
                self.counter.add("distance_calcs", node.indices.size)
                d_sq = point_to_points_sq(query, self._points[node.indices])
                if strict:
                    count += int(np.count_nonzero(d_sq < radius_sq))
                else:
                    count += int(np.count_nonzero(d_sq <= radius_sq))
            else:
                stack.extend(node.children)
        return count

    def nearest_neighbor(self, query, *, exclude: int | None = None) -> tuple[int, float]:
        """Return ``(index, distance)`` of the nearest indexed point to ``query``."""
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self._dim:
            raise ValueError(
                f"query has dimension {query.shape[0]}, expected {self._dim}"
            )
        best_idx = -1
        best_sq = np.inf
        stack: list[tuple[float, _Node]] = [(0.0, self._root)]
        while stack:
            bound, node = stack.pop()
            if bound >= best_sq:
                continue
            if node.is_leaf:
                idx = node.indices
                self.counter.add("distance_calcs", idx.size)
                d_sq = point_to_points_sq(query, self._points[idx])
                if exclude is not None:
                    d_sq = np.where(idx == exclude, np.inf, d_sq)
                pos = int(np.argmin(d_sq))
                if d_sq[pos] < best_sq:
                    best_sq = float(d_sq[pos])
                    best_idx = int(idx[pos])
            else:
                children = sorted(
                    node.children,
                    key=lambda child: _min_sq_dist_to_box(query, child.mins, child.maxs),
                    reverse=True,
                )
                for child in children:
                    stack.append(
                        (_min_sq_dist_to_box(query, child.mins, child.maxs), child)
                    )
        distance = float(np.sqrt(best_sq)) if np.isfinite(best_sq) else np.inf
        return best_idx, distance
