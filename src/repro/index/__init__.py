"""Spatial index substrates.

The paper's algorithms are built on three in-memory indexes, all implemented
here from scratch:

* :class:`repro.index.kdtree.KDTree` -- bulk-loaded kd-tree with range
  count/search and (filtered) nearest-neighbour queries.  Used by Ex-DPC,
  Approx-DPC, S-Approx-DPC, and by the exact dependency fallback.
* :class:`repro.index.kdtree.IncrementalKDTree` -- pointer-based kd-tree that
  supports point-at-a-time insertion.  Ex-DPC inserts points in descending
  density order and answers each dependent-point query with a nearest
  neighbour search over the current tree.
* :class:`repro.index.rtree.RTree` -- STR bulk-loaded R-tree used by the
  ``R-tree + Scan`` baseline.
* :class:`repro.index.grid.UniformGrid` -- the cell structure of Approx-DPC
  (cell side ``d_cut / sqrt(d)``), tracking per-cell point lists, the densest
  point per cell and neighbouring-cell sets.
* :class:`repro.index.sample_grid.SampledGrid` -- the ``epsilon``-scaled grid
  of S-Approx-DPC with one *picked* point per cell.

Batch query engine
------------------
The kd-tree additionally exposes a *vectorised batch* API --
``range_count_batch`` / ``range_search_batch`` / ``knn_batch`` /
``nearest_neighbor_batch`` -- that answers many queries with one iterative
traversal: internal nodes route whole query subsets with a single vectorised
comparison and leaves evaluate entire ``queries x bucket`` distance blocks at
once.  The grids mirror this with vectorised construction
(:func:`repro.index.grid.lattice_groups`) and batch key lookups
(``distinct_keys_of_points``).  Batch results are
bit-for-bit equal to the scalar queries (property-tested in
``tests/property/test_batch_equivalence.py``); ``docs/performance.md``
documents the design and the measured speedups.
"""

from repro.index.grid import UniformGrid
from repro.index.kdtree import IncrementalKDTree, KDTree, KDTreeArrays
from repro.index.rtree import RTree
from repro.index.sample_grid import SampledGrid

__all__ = [
    "KDTree",
    "KDTreeArrays",
    "IncrementalKDTree",
    "RTree",
    "UniformGrid",
    "SampledGrid",
]
