"""Spatial index substrates.

The paper's algorithms are built on three in-memory indexes, all implemented
here from scratch:

* :class:`repro.index.kdtree.KDTree` -- bulk-loaded kd-tree with range
  count/search and (filtered) nearest-neighbour queries.  Used by Ex-DPC,
  Approx-DPC, S-Approx-DPC, and by the exact dependency fallback.
* :class:`repro.index.kdtree.IncrementalKDTree` -- pointer-based kd-tree that
  supports point-at-a-time insertion.  Ex-DPC inserts points in descending
  density order and answers each dependent-point query with a nearest
  neighbour search over the current tree.
* :class:`repro.index.rtree.RTree` -- STR bulk-loaded R-tree used by the
  ``R-tree + Scan`` baseline.
* :class:`repro.index.grid.UniformGrid` -- the cell structure of Approx-DPC
  (cell side ``d_cut / sqrt(d)``), tracking per-cell point lists, the densest
  point per cell and neighbouring-cell sets.
* :class:`repro.index.sample_grid.SampledGrid` -- the ``epsilon``-scaled grid
  of S-Approx-DPC with one *picked* point per cell.
"""

from repro.index.grid import UniformGrid
from repro.index.kdtree import IncrementalKDTree, KDTree
from repro.index.rtree import RTree
from repro.index.sample_grid import SampledGrid

__all__ = ["KDTree", "IncrementalKDTree", "RTree", "UniformGrid", "SampledGrid"]
