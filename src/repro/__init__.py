"""repro -- Fast Density-Peaks Clustering: Multicore-based Parallelization Approach.

A from-scratch Python reproduction of Amagata & Hara (SIGMOD 2021): the exact
algorithm **Ex-DPC**, the approximate algorithms **Approx-DPC** and
**S-Approx-DPC**, every baseline the paper evaluates against (Scan,
R-tree + Scan, LSH-DDP, CFSFDP-A, DBSCAN, OPTICS, k-means), the spatial-index
and LSH substrates they rely on, dataset generators, quality metrics and a
benchmark harness that regenerates every table and figure of the paper's
evaluation.

Quickstart::

    import numpy as np
    from repro import ApproxDPC
    from repro.data import generate_syn

    points, _ = generate_syn(n_points=5_000, seed=0)
    model = ApproxDPC(d_cut=2_500.0, rho_min=10, n_clusters=13)
    result = model.fit(points)
    print(result.summary())

See README.md for the full tour, DESIGN.md for the architecture and
EXPERIMENTS.md for paper-versus-measured results.
"""

from repro.baselines import CFSFDPA, DBSCAN, KMeans, LSHDDP, OPTICS, RTreeScanDPC, ScanDPC
from repro.core import (
    ApproxDPC,
    DecisionGraph,
    DPCResult,
    ExDPC,
    ReclusterIndex,
    SApproxDPC,
)
from repro.index import IncrementalKDTree, KDTree, RTree, SampledGrid, UniformGrid
from repro.metrics import adjusted_rand_index, center_agreement, rand_index

__version__ = "1.0.0"

# Imported after __version__: the snapshot writer records the library version.
from repro.stream import StreamingDPC, load_model, save_model  # noqa: E402

__all__ = [
    # paper contributions
    "ExDPC",
    "ApproxDPC",
    "SApproxDPC",
    # shared framework objects
    "DPCResult",
    "DecisionGraph",
    "ReclusterIndex",
    # baselines
    "ScanDPC",
    "RTreeScanDPC",
    "LSHDDP",
    "CFSFDPA",
    "DBSCAN",
    "OPTICS",
    "KMeans",
    # substrates
    "KDTree",
    "IncrementalKDTree",
    "RTree",
    "UniformGrid",
    "SampledGrid",
    # streaming / serving
    "StreamingDPC",
    "save_model",
    "load_model",
    # metrics
    "rand_index",
    "adjusted_rand_index",
    "center_agreement",
    "__version__",
]
