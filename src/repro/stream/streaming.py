"""Incremental Density-Peaks Clustering over a point stream.

:class:`StreamingDPC` keeps an **exact** Ex-DPC clustering of the current
window alive under point insertions and evictions without refitting from
scratch on every update.  The design has three ingredients:

**Buffered inserts, amortized rebuilds.**  A fitted run owns two indexes: the
static bulk-loaded :class:`~repro.index.kdtree.KDTree` built by the last full
(re)fit over the *base* points, and a dynamic pointer
:class:`~repro.index.kdtree.IncrementalKDTree` holding the *hot buffer* of
points inserted since.  Range queries consult both (evicted base points are
masked out).  Once the number of mutations since the last rebuild exceeds
``rebuild_threshold * n``, the window is cold-fitted again through the batch
engine, which resets the buffer -- classic amortization: each rebuild costs
one fit but pays for ``Theta(n)`` cheap updates.

**Localized repair.**  Definition 1 is local: inserting or evicting a point
``q`` changes the density of exactly the points whose ``d_cut``-ball contains
``q``, so those counts are adjusted by ``+-1`` via two range searches.
Dependencies are repaired for the *dirty set*: points whose own tie-broken
density changed, points whose dependency target changed density or was
evicted, and points for which a changed/inserted point became a denser
candidate within their current dependent distance.  Everything else provably
keeps its dependency, which is what makes the update sublinear in practice.
The repair itself is one call into the unified nearest-denser join layer
(:func:`repro.core.dependency_join.repair_nearest_denser`) -- the same
engine that serves ``fit`` and ``predict`` -- so the recomputed pairs are
bit-identical to what a cold fit would produce.
Labels are then re-derived from the repaired arrays; the propagation step is
``O(n)`` and far below the cost of the phases the repair machinery avoids.

**Window discipline.**  The window is a slot array with swap-remove eviction:
surviving points never change slots except for the single point swapped into
an evicted slot.  This matters because the density tie-break of a cold fit is
positional (``random_tiebreak`` draws one uniform per slot from the fit
seed), so slot stability keeps the dirty set small.  The "current window" a
cold fit sees is exactly ``window_``, in slot order.

``refit_equivalence=True`` turns on the self-check mode: after every update
batch the maintained labels (and raw densities) are compared against a cold
``ExDPC().fit`` of the current window and any mismatch raises
:class:`StreamingEquivalenceError`.  Equivalence is bit-for-bit on the raw
densities and on the labels for data in general position (exact distance
ties between distinct candidate pairs may resolve differently, as may
last-ulp coincidences at the ``delta_min`` boundary).
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import assign_clusters
from repro.core.dependency_join import repair_nearest_denser
from repro.core.ex_dpc import ExDPC
from repro.core.result import DPCResult, canonical_rho_raw
from repro.index.kdtree import IncrementalKDTree, KDTree
from repro.kernels import pair_distances_sq, resolve_kernel
from repro.utils.counters import WorkCounter
from repro.utils.rng import ensure_rng, random_tiebreak
from repro.utils.validation import check_points, check_positive, check_positive_int

__all__ = ["StreamingDPC", "StreamingEquivalenceError"]

#: ``_dependent`` sentinel: the stored target was evicted, recompute.
_STALE = -2


class StreamingEquivalenceError(AssertionError):
    """Raised in ``refit_equivalence`` mode when the incremental state diverges
    from a cold fit of the current window."""


class StreamingDPC:
    """Exact DPC over a sliding or landmark window of a point stream.

    Parameters
    ----------
    d_cut:
        Cutoff distance of Definition 1 (shared with the wrapped Ex-DPC).
    window_size:
        Maximum number of live points.  ``None`` (landmark mode) never
        evicts; otherwise :meth:`update` evicts the oldest points to make
        room (sliding window).
    rho_min, delta_min, n_clusters:
        Center / noise selection, as in
        :class:`~repro.core.framework.DensityPeaksBase`.
    seed:
        Tie-break seed.  Must stay fixed for the lifetime of the stream; it
        is what makes incremental state and cold refits agree.
    leaf_size:
        kd-tree leaf size for rebuilds and snapshots.
    rebuild_threshold:
        Fraction of the window size worth of mutations (inserts + evicts)
        that triggers a full amortized rebuild.
    min_rebuild:
        Never rebuild before this many mutations accumulate (keeps tiny
        windows from rebuilding constantly).
    refit_equivalence:
        Self-check mode: verify every update against a cold fit (slow --
        meant for tests and debugging, not production).
    repair_chunk:
        Dirty points processed per vectorised repair block.
    engine:
        Query engine of the wrapped Ex-DPC (``"scalar"``, ``"batch"`` or
        ``"dual"``; ``None`` reads ``REPRO_DEFAULT_ENGINE``).  With
        ``"dual"`` the amortized rebuilds run the density phase as a
        dual-tree self-join and :meth:`predict` joins new points against the
        window tree with one simultaneous traversal -- results are
        bit-for-bit identical on every engine.
    dual_frontier:
        Work-unit decomposition of the dual joins (``"auto"``, an int, or
        ``None`` to read ``REPRO_DUAL_FRONTIER``).  ``"auto"`` stays
        symbolic and is resolved against the window size at each rebuild,
        deterministically, so replays of one stream agree.
    kernel:
        Blocked kernel tier of every distance evaluation (``"auto"``,
        ``"numpy"``, ``"numba"``, ``"cupy"``; ``None`` reads
        ``REPRO_KERNEL``).  Tiers are bit-identical, so the stream's
        incremental state is portable across machines with different
        accelerators -- see ``docs/kernels.md``.

    Attributes
    ----------
    labels_, centers_, noise_mask_:
        Current clustering of the window, identical to what a cold
        ``ExDPC(...).fit(window_)`` would produce.
    stats_:
        Operation counters: inserts, evicts, repairs, rebuilds, dirty-set
        sizes, equivalence checks.
    """

    def __init__(
        self,
        d_cut: float,
        *,
        window_size: int | None = None,
        rho_min: float | None = None,
        delta_min: float | None = None,
        n_clusters: int | None = None,
        seed: int | None = 0,
        leaf_size: int = 32,
        rebuild_threshold: float = 0.25,
        min_rebuild: int = 64,
        refit_equivalence: bool = False,
        repair_chunk: int = 256,
        engine: str | None = None,
        dual_frontier=None,
        kernel: str | None = None,
    ):
        from repro.core.framework import resolve_engine
        from repro.index.kdtree import resolve_dual_frontier

        self.engine = resolve_engine(engine)
        # Resolved once, here: every amortized rebuild must use the same
        # frontier decomposition, or work counters would drift between
        # rebuilds of one stream if the environment changed underneath.
        # ``"auto"`` stays symbolic -- the wrapped estimator resolves it
        # against the window size at each rebuild (deterministic in n).
        self.dual_frontier = resolve_dual_frontier(dual_frontier)
        self.kernel = resolve_kernel(kernel)
        self.d_cut = check_positive(d_cut, "d_cut")
        if window_size is not None:
            window_size = check_positive_int(window_size, "window_size")
            if window_size < 2:
                raise ValueError("window_size must be at least 2")
        self.window_size = window_size
        self.rho_min = rho_min
        self.delta_min = delta_min
        self.n_clusters = n_clusters
        self.seed = seed
        self.leaf_size = check_positive_int(leaf_size, "leaf_size")
        self.rebuild_threshold = check_positive(rebuild_threshold, "rebuild_threshold")
        self.min_rebuild = check_positive_int(min_rebuild, "min_rebuild")
        self.refit_equivalence = bool(refit_equivalence)
        self.repair_chunk = check_positive_int(repair_chunk, "repair_chunk")
        # Validate the center-selection parameters eagerly (ExDPC rejects
        # inconsistent combinations with the library's standard messages).
        self._make_estimator()

        self._counter = WorkCounter()
        self._n = 0
        self._dim: int | None = None
        self._base_tree: KDTree | None = None
        self._epoch = 0
        self.labels_: np.ndarray | None = None
        self.centers_: np.ndarray | None = None
        self.noise_mask_: np.ndarray | None = None
        self.stats_: dict[str, int] = {
            "inserts": 0,
            "evicts": 0,
            "repairs": 0,
            "rebuilds": 0,
            "dirty_density": 0,
            "dirty_dependency": 0,
            "equivalence_checks": 0,
        }

    # ---------------------------------------------------------------- plumbing

    def _make_estimator(self) -> ExDPC:
        """A fresh Ex-DPC configured exactly like a cold fit of this stream."""
        return ExDPC(
            self.d_cut,
            rho_min=self.rho_min,
            delta_min=self.delta_min,
            n_clusters=self.n_clusters,
            seed=self.seed,
            leaf_size=self.leaf_size,
            backend="serial",
            record_costs=False,
            engine=self.engine,
            dual_frontier=self.dual_frontier,
            kernel=self.kernel,
        )

    def _effective_engine(self) -> str:
        """The concrete engine of this stream (``"auto"`` resolves by dim)."""
        from repro.core.framework import effective_engine

        return effective_engine(self.engine, self._dim or 0)

    def _check_fitted(self) -> None:
        if self._base_tree is None:
            raise RuntimeError(
                "this StreamingDPC instance is not fitted yet; call fit() with "
                "the initial window first"
            )

    @property
    def n_points(self) -> int:
        """Number of points currently in the window."""
        return self._n

    @property
    def window_(self) -> np.ndarray:
        """The current window in slot order (the array a cold fit would see)."""
        self._check_fitted()
        return self._points[: self._n].copy()

    def _ensure_capacity(self, extra: int) -> None:
        need = self._n + extra
        capacity = self._points.shape[0]
        if need <= capacity:
            return
        new_capacity = max(need, 2 * capacity)
        for name in (
            "_points",
            "_age",
            "_rho_raw",
            "_rho",
            "_delta",
            "_dependent",
            "_slot_base",
            "_slot_hot",
        ):
            old = getattr(self, name)
            shape = (new_capacity,) + old.shape[1:]
            grown = np.empty(shape, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    # -------------------------------------------------------------- public API

    def fit(self, points) -> "StreamingDPC":
        """Cold-fit the initial window and return ``self``."""
        points = check_points(points, min_points=2, name="points")
        if self.window_size is not None and points.shape[0] > self.window_size:
            raise ValueError(
                f"initial window has {points.shape[0]} points, which exceeds "
                f"window_size={self.window_size}"
            )
        n, self._dim = points.shape
        capacity = max(n, self.window_size or 0, 8)
        self._points = np.empty((capacity, self._dim), dtype=np.float64)
        self._points[:n] = points
        self._age = np.empty(capacity, dtype=np.int64)
        self._age[:n] = np.arange(n)
        self._next_age = n
        self._rho_raw = np.zeros(capacity, dtype=np.float64)
        self._rho = np.zeros(capacity, dtype=np.float64)
        self._delta = np.zeros(capacity, dtype=np.float64)
        self._dependent = np.full(capacity, -1, dtype=np.intp)
        self._slot_base = np.full(capacity, -1, dtype=np.intp)
        self._slot_hot = np.full(capacity, -1, dtype=np.intp)
        self._n = n
        self._rebuild()
        if self.refit_equivalence:
            self._check_equivalence()
        return self

    def insert(self, points) -> "StreamingDPC":
        """Insert points into the window (no eviction; see :meth:`update`)."""
        self._check_fitted()
        points = self._check_stream_points(points)
        if (
            self.window_size is not None
            and self._n + points.shape[0] > self.window_size
        ):
            raise ValueError(
                f"inserting {points.shape[0]} points would exceed "
                f"window_size={self.window_size}; use update() for sliding-"
                "window semantics"
            )
        for row in points:
            self._insert_one(row)
        self._finish_update()
        return self

    def evict_oldest(self, count: int = 1) -> "StreamingDPC":
        """Evict the ``count`` oldest points from the window."""
        self._check_fitted()
        count = check_positive_int(count, "count")
        if self._n - count < 2:
            raise ValueError(
                f"evicting {count} points would shrink the window below 2"
            )
        for _ in range(count):
            self._evict_slot(int(np.argmin(self._age[: self._n])))
        self._finish_update()
        return self

    def update(self, points) -> "StreamingDPC":
        """Insert points, evicting the oldest first when the window is full."""
        self._check_fitted()
        points = self._check_stream_points(points)
        for row in points:
            if self.window_size is not None and self._n >= self.window_size:
                # The insert immediately below restores the population, so the
                # window may transiently hold one point (transient=True);
                # repairs only run after the batch, on a full window.
                self._evict_slot(
                    int(np.argmin(self._age[: self._n])), transient=True
                )
            self._insert_one(row)
        self._finish_update()
        return self

    def predict(self, points) -> np.ndarray:
        """Assign out-of-sample points against the current window state."""
        return self.to_estimator().predict(points)

    def to_estimator(self) -> ExDPC:
        """Materialise the current state as a fitted :class:`ExDPC`.

        The returned estimator carries the maintained arrays as its result, a
        freshly bulk-loaded kd-tree over the window (cheap: no density or
        dependency work), and supports ``predict`` and
        :func:`repro.io.save_model` -- the fit-once / snapshot / serve recipe
        of ``docs/streaming.md``.  Cached until the next update.
        """
        self._check_fitted()
        cached = getattr(self, "_estimator_cache", None)
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        n = self._n
        points = self._points[:n].copy()
        estimator = self._make_estimator()
        estimator._fit_points_ = points
        estimator._counter = WorkCounter()
        estimator._tree = KDTree(
            points,
            leaf_size=self.leaf_size,
            counter=estimator._counter,
            kernel=self.kernel,
        )
        rho_raw = self._rho_raw[:n].copy()
        dependent_raw = self._dependent[:n].copy()
        dependent = dependent_raw.copy()
        dependent[self.centers_] = -1
        estimator.result_ = DPCResult(
            labels_=self.labels_.copy(),
            rho_=self._rho[:n].copy(),
            rho_raw_=canonical_rho_raw(rho_raw),
            delta_=self._delta[:n].copy(),
            dependent_=dependent,
            centers_=self.centers_.copy(),
            noise_mask_=self.noise_mask_.copy(),
            n_clusters_=int(self.centers_.shape[0]),
            exact_dependency_mask_=np.ones(n, dtype=bool),
            params_=estimator.get_params(),
            algorithm_=estimator.algorithm_name,
            dependent_raw_=dependent_raw,
        )
        self._estimator_cache = (self._epoch, estimator)
        return estimator

    # ------------------------------------------------------------- ingest ops

    def _check_stream_points(self, points) -> np.ndarray:
        points = check_points(np.atleast_2d(np.asarray(points, dtype=np.float64)),
                              name="points")
        if points.shape[1] != self._dim:
            raise ValueError(
                f"stream points have dimension {points.shape[1]}, "
                f"but the window holds dimension {self._dim}"
            )
        return points

    def _window_range(self, query: np.ndarray, radius: float) -> np.ndarray:
        """Slots of live window points strictly within ``radius`` of ``query``."""
        slots: list[np.ndarray] = []
        base_hits = self._base_tree.range_search(query, radius, strict=True)
        if base_hits.size:
            mapped = self._base_slot[base_hits]
            slots.append(mapped[mapped >= 0])
        if self._hot.size:
            hot_hits = self._hot.range_search(query, radius, strict=True)
            if hot_hits.size:
                mapped = self._hot_slot[: self._hot_count][hot_hits]
                slots.append(mapped[mapped >= 0])
        if not slots:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(slots)

    def _insert_one(self, point: np.ndarray) -> None:
        """Append one point and apply the localized density repair."""
        self._ensure_capacity(1)
        slot = self._n
        self._points[slot] = point
        self._age[slot] = self._next_age
        self._next_age += 1
        hot_index = self._hot.append(point)
        if self._hot_count == self._hot_slot.shape[0]:
            # Geometric growth: a run of k buffered inserts stays O(k) total.
            grown = np.empty(max(8, 2 * self._hot_slot.shape[0]), dtype=np.intp)
            grown[: self._hot_count] = self._hot_slot[: self._hot_count]
            self._hot_slot = grown
        self._hot_slot[self._hot_count] = slot
        self._hot_count += 1
        self._slot_hot[slot] = hot_index
        self._slot_base[slot] = -1
        # Fresh slots start from a value the repair pass always flags dirty.
        self._rho_raw[slot] = 0.0
        self._rho[slot] = -1.0
        self._delta[slot] = np.inf
        self._dependent[slot] = -1
        self._n += 1

        # Localized density repair: only the d_cut-ball of the new point
        # changes (the search includes the point itself, matching the strict
        # self-count of Definition 1).
        neighbors = self._window_range(point, self.d_cut)
        others = neighbors[neighbors != slot]
        self._rho_raw[others] += 1.0
        self._rho_raw[slot] = float(neighbors.size)
        self.stats_["inserts"] += 1
        self.stats_["dirty_density"] += int(neighbors.size)
        self._mutations += 1

    def _evict_slot(self, slot: int, *, transient: bool = False) -> None:
        """Remove the point in ``slot`` (swap-remove) with density repair.

        ``transient=True`` (update's paired evict+insert) allows the window
        to hold a single point between the two halves of the pair.
        """
        if self._n <= (1 if transient else 2):
            raise ValueError("window cannot shrink below 2 points")
        n = self._n
        point = self._points[slot].copy()

        # Localized density repair for the survivors.
        neighbors = self._window_range(point, self.d_cut)
        others = neighbors[neighbors != slot]
        self._rho_raw[others] -= 1.0
        self.stats_["dirty_density"] += int(others.size)

        # Points that depended on the evicted one must recompute.
        stale = np.flatnonzero(self._dependent[:n] == slot)
        self._dependent[stale] = _STALE

        # Unregister from whichever index holds the point.
        base_index = self._slot_base[slot]
        hot_index = self._slot_hot[slot]
        if base_index >= 0:
            self._base_slot[base_index] = -1
        if hot_index >= 0:
            self._hot_slot[hot_index] = -1

        last = n - 1
        if slot != last:
            # Swap-remove: the point in the last slot moves into the hole.
            # Its coordinates (hence all distances) are unchanged; only its
            # positional tie-break fraction changes, which the repair pass
            # detects through the rho comparison.
            for name in ("_points", "_age", "_rho_raw", "_rho", "_delta", "_dependent"):
                getattr(self, name)[slot] = getattr(self, name)[last]
            mover_base = self._slot_base[last]
            mover_hot = self._slot_hot[last]
            self._slot_base[slot] = mover_base
            self._slot_hot[slot] = mover_hot
            if mover_base >= 0:
                self._base_slot[mover_base] = slot
            if mover_hot >= 0:
                self._hot_slot[mover_hot] = slot
            moved_refs = np.flatnonzero(self._dependent[:last] == last)
            self._dependent[moved_refs] = slot
        self._n = last
        self.stats_["evicts"] += 1
        self._mutations += 1

    # ------------------------------------------------------------------ repair

    def _finish_update(self) -> None:
        """Repair (or rebuild) dependencies/labels after a batch of ingest ops."""
        threshold = max(self.min_rebuild, int(self.rebuild_threshold * self._n))
        if self._mutations >= threshold:
            # A rebuild recomputes everything from the window; the repair
            # pass would be redundant work.
            self._rebuild()
        else:
            self._repair()
            self._epoch += 1
        if self.refit_equivalence:
            self._check_equivalence()

    def _repair(self) -> None:
        n = self._n
        points = self._points[:n]
        delta_old = self._delta[:n].copy()

        # Recompute the positional tie-break exactly as a cold fit would: the
        # same seed draws the same fraction for every stable slot, so the
        # changed set is precisely {raw density changed} | {slot changed}.
        old_rho = self._rho[:n].copy()
        new_rho = random_tiebreak(self._rho_raw[:n], ensure_rng(self.seed))
        self._rho[:n] = new_rho
        changed = np.flatnonzero(new_rho != old_rho)

        dirty = np.zeros(n, dtype=bool)
        dirty[changed] = True
        dependent = self._dependent[:n]
        dirty[dependent == _STALE] = True
        # Points whose dependency target changed density (it may have dropped
        # out of their denser set).
        valid = dependent >= 0
        changed_mask = np.zeros(n, dtype=bool)
        changed_mask[changed] = True
        dirty[valid & changed_mask[np.where(valid, dependent, 0)]] = True

        # Points for which a changed/inserted point became a denser candidate
        # within their current dependent distance (<= keeps equal-distance
        # candidates eligible for the smallest-index tie-break).
        if changed.size:
            delta_sq = np.square(delta_old)
            for start in range(0, changed.size, self.repair_chunk):
                block = changed[start : start + self.repair_chunk]
                d_sq = pair_distances_sq(points[block], points)
                self._counter.add("distance_calcs", float(block.size) * float(n))
                cond = (new_rho[block][:, None] > new_rho[None, :]) & (
                    d_sq <= delta_sq[None, :]
                )
                dirty |= cond.any(axis=0)

        repair = np.flatnonzero(dirty)
        if repair.size:
            # Unified nearest-denser join (same tie-break and arithmetic as
            # fit and predict): no fallback -- a point denser than all others
            # is the forest root (dependent -1, delta inf), exactly as in a
            # cold fit.  With engine="dual" and a large enough dirty set the
            # join runs dual-tree; the engine choice never changes a bit of
            # the result.
            targets, distances = repair_nearest_denser(
                points,
                new_rho,
                points[repair],
                new_rho[repair],
                engine=self._effective_engine(),
                counter=self._counter,
                leaf_size=self.leaf_size,
                kernel=self.kernel,
            )
            self._dependent[repair] = targets
            self._delta[repair] = distances

        self.labels_, self.centers_, self.noise_mask_ = assign_clusters(
            new_rho,
            self._rho_raw[:n],
            self._delta[:n],
            self._dependent[:n],
            rho_min=self.rho_min,
            delta_min=self.delta_min,
            n_clusters=self.n_clusters,
        )
        self.stats_["repairs"] += 1
        self.stats_["dirty_dependency"] += int(repair.size)

    # ----------------------------------------------------------------- rebuild

    def _rebuild(self) -> None:
        """Amortized full rebuild: cold-fit the window through the batch engine."""
        n = self._n
        base_points = self._points[:n].copy()
        model = self._make_estimator()
        result = model.fit(base_points)
        self._base_tree = model._tree
        self._base_slot = np.arange(n, dtype=np.intp)
        self._slot_base[:n] = np.arange(n)
        self._hot = IncrementalKDTree(dim=self._dim, counter=self._counter)
        self._hot_slot = np.empty(0, dtype=np.intp)
        self._hot_count = 0
        self._slot_hot[:n] = -1
        self._rho_raw[:n] = np.asarray(result.rho_raw_, dtype=np.float64)
        self._rho[:n] = result.rho_
        self._delta[:n] = result.delta_
        self._dependent[:n] = (
            result.dependent_raw_
            if result.dependent_raw_ is not None
            else result.dependent_
        )
        self.labels_ = result.labels_.copy()
        self.centers_ = result.centers_.copy()
        self.noise_mask_ = result.noise_mask_.copy()
        self.stats_["rebuilds"] += 1
        self._mutations = 0
        self._epoch += 1

    # ------------------------------------------------------------- equivalence

    def _check_equivalence(self) -> None:
        """Assert the maintained state matches a cold fit of the window."""
        n = self._n
        model = self._make_estimator()
        result = model.fit(self._points[:n].copy())
        self.stats_["equivalence_checks"] += 1
        rho_ok = np.array_equal(
            np.asarray(result.rho_raw_, dtype=np.float64), self._rho_raw[:n]
        )
        labels_ok = np.array_equal(result.labels_, self.labels_)
        if rho_ok and labels_ok:
            return
        detail = []
        if not rho_ok:
            bad = np.flatnonzero(
                np.asarray(result.rho_raw_, dtype=np.float64) != self._rho_raw[:n]
            )
            detail.append(f"raw densities differ at {bad.size} slots (first: {bad[:5]})")
        if not labels_ok:
            bad = np.flatnonzero(result.labels_ != self.labels_)
            detail.append(f"labels differ at {bad.size} slots (first: {bad[:5]})")
        raise StreamingEquivalenceError(
            "incremental state diverged from a cold refit of the window: "
            + "; ".join(detail)
        )
