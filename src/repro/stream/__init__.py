"""Streaming DPC: incremental ingestion, online predict, model snapshots.

The paper's algorithms are batch clusterers; this package adds the serving
layer on top of them (see ``docs/streaming.md``):

* :class:`~repro.stream.streaming.StreamingDPC` maintains an exact Ex-DPC
  clustering over a sliding or landmark window under point insertions and
  evictions, using localized density/dependency repair plus an amortized
  index rebuild;
* :mod:`repro.stream.snapshot` serializes any fitted estimator into a single
  ``.npz`` file that serving replicas restore (optionally memory-mapped) and
  answer ``predict`` queries from.
"""

from repro.stream.snapshot import MODEL_FORMAT_VERSION, load_model, save_model
from repro.stream.streaming import StreamingDPC, StreamingEquivalenceError

__all__ = [
    "StreamingDPC",
    "StreamingEquivalenceError",
    "save_model",
    "load_model",
    "MODEL_FORMAT_VERSION",
]
