"""Model snapshots: ship a fitted estimator to serving replicas as one file.

A snapshot is a single uncompressed ``.npz`` archive holding everything
:meth:`~repro.core.framework.DensityPeaksBase.predict` needs:

* the fitted point matrix,
* the per-point result arrays (labels, tie-broken and raw densities,
  dependent distances, the dependency forest with and without center
  masking, centers, noise and exactness masks),
* the flattened kd-tree (:class:`~repro.index.kdtree.KDTreeArrays`, stored
  under ``tree.*`` keys) when the estimator owns one,
* the density tie-break jitter and, when the estimator had built one, the
  re-cluster index profiles (``profile.*`` keys), so restored models answer
  :meth:`~repro.core.framework.DensityPeaksBase.recluster` immediately, and
* a JSON metadata record (``meta``): format version, algorithm name and the
  constructor parameters used to rebuild the estimator.

Snapshots from every older format version load transparently (missing
pieces are rebuilt or simply absent); snapshots from a *newer* version are
rejected with a clear error.

Because ``np.savez`` stores members uncompressed, :func:`load_model` can
optionally **memory-map** every array straight out of the archive
(``mmap=True``): replicas serving a large fitted model share its pages
through the OS page cache instead of each materialising a private copy.

The format is versioned (:data:`MODEL_FORMAT_VERSION`); loaders reject
snapshots from a different version with a clear error instead of
misinterpreting them.
"""

from __future__ import annotations

import inspect
import io
import json
import struct
import zipfile
from pathlib import Path

import numpy as np

from repro.baselines.cfsfdp_a import CFSFDPA
from repro.baselines.scan import ScanDPC
from repro.core.approx_dpc import ApproxDPC
from repro.core.ex_dpc import ExDPC
from repro.core.result import DPCResult, canonical_rho_raw
from repro.core.s_approx_dpc import SApproxDPC
from repro.index.kdtree import KDTree, KDTreeArrays
from repro.utils.counters import WorkCounter

__all__ = [
    "MODEL_FORMAT_VERSION",
    "SNAPSHOT_ALGORITHMS",
    "load_model",
    "load_npz_arrays",
    "save_model",
]

#: Snapshot format version; bump on any incompatible layout change.
#: Version 2 added the per-node bounding boxes of the dual-tree engine
#: (``tree.bbox_min`` / ``tree.bbox_max``) and float32 tree storage (the
#: split values carry the storage dtype; points stay float64 on disk).
#: Version 3 added the per-node density maxima of the nearest-denser join
#: (``tree.rho_max``, attached by fit) and records the resolved
#: ``dual_frontier`` in the params, so restored models serve the dual
#: dependency engine without recomputation and stay counter-deterministic.
#: Version 4 added the density tie-break jitter (``tiebreak_jitter``) and,
#: when the estimator had built one, the re-cluster index profiles
#: (``profile.values`` / ``profile.join_ids`` / ``profile.indptr`` /
#: ``profile.coverage_sq`` / ``profile.d_cut_max``), so a restored model can
#: answer :meth:`~repro.core.framework.DensityPeaksBase.recluster` without
#: re-deriving either.  :func:`load_model` reads *every* version back to 1:
#: v1 tree bounding boxes are rebuilt on load, and pre-v4 snapshots simply
#: restore without a cached re-cluster index.  The ``kernel`` tier name and
#: the (possibly resolved) ``dual_frontier`` ride in the params record --
#: constructor filtering restores them without a format bump, and
#: ``kernel="auto"`` stays symbolic so snapshots are portable across
#: machines with different accelerators (tiers are bit-identical).
MODEL_FORMAT_VERSION = 4

_TREE_PREFIX = "tree."
_PROFILE_PREFIX = "profile."

#: Algorithm name (as recorded in ``result.algorithm_``) -> estimator class.
_ESTIMATOR_CLASSES = {
    "Ex-DPC": ExDPC,
    "Approx-DPC": ApproxDPC,
    "S-Approx-DPC": SApproxDPC,
    "Scan": ScanDPC,
    "CFSFDP-A": CFSFDPA,
}

#: Paper algorithm names that round-trip through save_model / load_model.
SNAPSHOT_ALGORITHMS = frozenset(_ESTIMATOR_CLASSES)


def _jsonable(value):
    """Convert numpy scalars inside a params dict to plain Python types."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def save_model(model, path) -> Path:
    """Serialize a fitted estimator to ``path`` (a ``.npz`` snapshot).

    ``model`` must be fitted (``fit()`` or a restored snapshot).  Returns the
    written path.  See :func:`load_model` for the inverse.
    """
    result = model.check_is_fitted()
    algorithm = result.algorithm_ or model.algorithm_name
    if algorithm not in _ESTIMATOR_CLASSES:
        # Refuse to write snapshots load_model cannot read back; discovering
        # that at serving time would make the snapshot a one-way trip.
        raise ValueError(
            f"cannot snapshot algorithm {algorithm!r}; snapshots support "
            f"{sorted(_ESTIMATOR_CLASSES)}"
        )
    path = Path(path)
    if path.suffix != ".npz":
        raise ValueError(
            f"model snapshots are .npz archives; got {path.suffix!r} "
            f"(pass a path ending in .npz)"
        )

    arrays: dict[str, np.ndarray] = {
        "points": np.asarray(model._fit_points_, dtype=np.float64),
        "labels": np.asarray(result.labels_, dtype=np.int64),
        "rho": np.asarray(result.rho_, dtype=np.float64),
        "rho_raw": np.asarray(result.rho_raw_, dtype=np.float64),
        "delta": np.asarray(result.delta_, dtype=np.float64),
        "dependent": np.asarray(result.dependent_, dtype=np.int64),
        "centers": np.asarray(result.centers_, dtype=np.int64),
        "noise_mask": np.asarray(result.noise_mask_, dtype=bool),
        "exact_mask": np.asarray(result.exact_dependency_mask_, dtype=bool),
    }
    if result.dependent_raw_ is not None:
        arrays["dependent_raw"] = np.asarray(result.dependent_raw_, dtype=np.int64)

    tree = model._predict_tree()
    if tree is not None:
        for name, array in tree.arrays.to_mapping(prefix=_TREE_PREFIX).items():
            arrays[name] = array
        arrays[_TREE_PREFIX + "leaf_size"] = np.asarray([tree.leaf_size], dtype=np.int64)

    jitter = getattr(model, "_tiebreak_jitter_", None)
    if jitter is not None:
        arrays["tiebreak_jitter"] = np.asarray(jitter, dtype=np.float64)

    recluster_index = getattr(model, "_recluster_index_", None)
    if recluster_index is not None:
        arrays[_PROFILE_PREFIX + "values"] = recluster_index._values
        arrays[_PROFILE_PREFIX + "join_ids"] = np.asarray(
            recluster_index._join_ids, dtype=np.int64
        )
        arrays[_PROFILE_PREFIX + "indptr"] = recluster_index._indptr
        arrays[_PROFILE_PREFIX + "coverage_sq"] = recluster_index._coverage_sq
        arrays[_PROFILE_PREFIX + "d_cut_max"] = np.asarray(
            [recluster_index.d_cut_max], dtype=np.float64
        )

    from repro import __version__  # deferred: repro/__init__ imports this module

    meta = {
        "format_version": MODEL_FORMAT_VERSION,
        "library_version": __version__,
        "algorithm": algorithm,
        "params": _jsonable(model.get_params()),
        "n_points": int(arrays["points"].shape[0]),
        "dim": int(arrays["points"].shape[1]),
        "has_tree": tree is not None,
        "has_profile": recluster_index is not None,
    }
    arrays["meta"] = np.asarray(json.dumps(meta, sort_keys=True))

    path.parent.mkdir(parents=True, exist_ok=True)
    # np.savez stores members uncompressed (ZIP_STORED), which is what makes
    # the optional mmap loading possible.
    np.savez(path, **arrays)
    return path


def load_npz_arrays(path, *, mmap: bool = False) -> dict[str, np.ndarray]:
    """Read every member of an ``.npz`` archive, optionally memory-mapped.

    With ``mmap=True`` the archive must be uncompressed (``np.savez``) and
    the arrays are mapped straight out of the file through
    :func:`_load_npz_memmap` -- replicas on the same host then share one
    physical copy via the page cache.  Shared by model snapshots, the
    sharded-fit manifests and the serving registry.
    """
    path = Path(path)
    if mmap:
        return _load_npz_memmap(path)
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def load_model(path, *, mmap: bool = False):
    """Restore a fitted estimator from a snapshot written by :func:`save_model`.

    Parameters
    ----------
    path:
        The ``.npz`` snapshot.
    mmap:
        When true, memory-map the arrays directly out of the (uncompressed)
        archive instead of reading them into private memory.  The restored
        model then reads fitted data lazily through the OS page cache --
        replicas on the same host share one physical copy.

    Returns
    -------
    DensityPeaksBase
        A fitted estimator of the snapshotted class; ``predict`` works
        immediately, no refit needed.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"model snapshot not found: {path}")
    data = load_npz_arrays(path, mmap=mmap)

    if "meta" not in data:
        raise ValueError(f"{path} is not a model snapshot (no 'meta' record)")
    meta = json.loads(str(data["meta"][()]))
    version = meta.get("format_version")
    if (
        not isinstance(version, int)
        or version < 1
        or version > MODEL_FORMAT_VERSION
    ):
        raise ValueError(
            f"unsupported model snapshot format version {version!r} "
            f"(this library reads versions 1..{MODEL_FORMAT_VERSION}); "
            "re-export the snapshot with a matching library version"
        )
    algorithm = meta.get("algorithm")
    cls = _ESTIMATOR_CLASSES.get(algorithm)
    if cls is None:
        raise ValueError(
            f"cannot restore algorithm {algorithm!r}; snapshot restore "
            f"supports {sorted(_ESTIMATOR_CLASSES)}"
        )

    params = dict(meta.get("params", {}))
    accepted = set(inspect.signature(cls.__init__).parameters)
    kwargs = {
        key: value
        for key, value in params.items()
        if key in accepted and key != "d_cut"
    }
    model = cls(params["d_cut"], **kwargs)
    model._counter = WorkCounter()

    points = np.asarray(data["points"], dtype=np.float64)
    model._fit_points_ = points

    rho_raw = np.asarray(data["rho_raw"], dtype=np.float64)
    dependent_raw = (
        np.asarray(data["dependent_raw"], dtype=np.intp)
        if "dependent_raw" in data
        else None
    )
    model.result_ = DPCResult(
        labels_=np.asarray(data["labels"], dtype=np.int64),
        rho_=np.asarray(data["rho"], dtype=np.float64),
        rho_raw_=canonical_rho_raw(rho_raw),
        delta_=np.asarray(data["delta"], dtype=np.float64),
        dependent_=np.asarray(data["dependent"], dtype=np.intp),
        centers_=np.asarray(data["centers"], dtype=np.intp),
        noise_mask_=np.asarray(data["noise_mask"], dtype=bool),
        n_clusters_=int(np.asarray(data["centers"]).shape[0]),
        exact_dependency_mask_=np.asarray(data["exact_mask"], dtype=bool),
        params_=params,
        algorithm_=algorithm,
        dependent_raw_=dependent_raw,
    )

    if "tiebreak_jitter" in data:
        model._tiebreak_jitter_ = np.asarray(
            data["tiebreak_jitter"], dtype=np.float64
        )

    if meta.get("has_tree") and (_TREE_PREFIX + "split_dim") in data:
        if (_TREE_PREFIX + "bbox_min") not in data:
            # Version 1 snapshots predate the per-node bounding boxes; the
            # rebuild replays the builder's bottom-up sweep exactly.
            data = dict(data)
            data.update(_rebuild_bbox(points, data))
        tree_arrays = KDTreeArrays.from_mapping(data, prefix=_TREE_PREFIX)
        leaf_size = int(np.asarray(data[_TREE_PREFIX + "leaf_size"])[0])
        model._tree = KDTree.from_arrays(
            points, tree_arrays, leaf_size=leaf_size, counter=model._counter
        )
        if tree_arrays.rho_max is not None:
            # Adopt the fitted per-node density maxima so the dual
            # dependency engine serves immediately without recomputing them.
            model._tree.attach_density_bounds(
                model.result_.rho_, node_max=np.asarray(tree_arrays.rho_max)
            )

    if meta.get("has_profile") and (_PROFILE_PREFIX + "values") in data:
        from repro.core.recluster import ReclusterIndex

        model._recluster_index_ = ReclusterIndex.from_arrays(
            model,
            d_cut_max=float(np.asarray(data[_PROFILE_PREFIX + "d_cut_max"])[0]),
            values=np.asarray(data[_PROFILE_PREFIX + "values"]),
            join_ids=np.asarray(data[_PROFILE_PREFIX + "join_ids"], dtype=np.intp),
            indptr=np.asarray(data[_PROFILE_PREFIX + "indptr"], dtype=np.int64),
            coverage_sq=np.asarray(
                data[_PROFILE_PREFIX + "coverage_sq"], dtype=np.float64
            ),
        )
    return model


def _rebuild_bbox(points: np.ndarray, data) -> dict[str, np.ndarray]:
    """Per-node bounding boxes for a version-1 snapshot's tree arrays.

    Replays the builder's reverse preorder sweep (children carry larger node
    ids than their parent): leaves take the coordinate-wise extrema of their
    bucket slice, internal nodes merge their children.  Version-1 trees
    always stored float64 points, so the rebuilt boxes are bit-identical to
    what the builder of the day would have produced.
    """
    left = np.asarray(data[_TREE_PREFIX + "left"])
    right = np.asarray(data[_TREE_PREFIX + "right"])
    start = np.asarray(data[_TREE_PREFIX + "start"])
    stop = np.asarray(data[_TREE_PREFIX + "stop"])
    indices = np.asarray(data[_TREE_PREFIX + "indices"])
    n_nodes = left.shape[0]
    dim = points.shape[1]
    bbox_min = np.empty((n_nodes, dim), dtype=points.dtype)
    bbox_max = np.empty((n_nodes, dim), dtype=points.dtype)
    for node in range(n_nodes - 1, -1, -1):
        child_left = left[node]
        if child_left < 0:
            coords = points[indices[start[node] : stop[node]]]
            bbox_min[node] = coords.min(axis=0)
            bbox_max[node] = coords.max(axis=0)
        else:
            child_right = right[node]
            np.minimum(
                bbox_min[child_left], bbox_min[child_right], out=bbox_min[node]
            )
            np.maximum(
                bbox_max[child_left], bbox_max[child_right], out=bbox_max[node]
            )
    return {
        _TREE_PREFIX + "bbox_min": bbox_min,
        _TREE_PREFIX + "bbox_max": bbox_max,
    }


def _load_npz_memmap(path: Path) -> dict[str, np.ndarray]:
    """Memory-map every member of an *uncompressed* ``.npz`` archive.

    ``np.load(..., mmap_mode=...)`` silently ignores the mmap request for
    ``.npz`` files, so this walks the zip directory itself: for each stored
    member it locates the raw ``.npy`` payload (local file header + name +
    extra field), parses the npy header for dtype/shape/order, and maps the
    data region of the archive file directly.  Tiny or object-/string-typed
    members (the JSON ``meta`` record) are read normally.
    """
    out: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        infos = archive.infolist()
        with open(path, "rb") as handle:
            for info in infos:
                if info.compress_type != zipfile.ZIP_STORED:
                    raise ValueError(
                        f"{path} is compressed; mmap loading requires an "
                        "uncompressed archive (written by np.savez / save_model)"
                    )
                name = info.filename
                if name.endswith(".npy"):
                    name = name[: -len(".npy")]
                handle.seek(info.header_offset)
                local_header = handle.read(30)
                if local_header[:4] != b"PK\x03\x04":
                    raise ValueError(f"corrupt zip member header for {info.filename}")
                name_len, extra_len = struct.unpack("<HH", local_header[26:30])
                data_start = info.header_offset + 30 + name_len + extra_len
                handle.seek(data_start)
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
                else:  # pragma: no cover - npy 3.0 needs utf8 names we never write
                    raise ValueError(
                        f"unsupported npy format version {version} in {info.filename}"
                    )
                if dtype.hasobject or dtype.kind in "US" or shape == ():
                    # Strings / scalars: not worth mapping, read the member.
                    with archive.open(info) as member:
                        out[name] = np.lib.format.read_array(
                            io.BytesIO(member.read()), allow_pickle=False
                        )
                    continue
                out[name] = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=handle.tell(),
                    shape=shape,
                    order="F" if fortran else "C",
                )
    return out
