"""Dataset generators used by the examples, tests and benchmarks.

The paper evaluates on five synthetic datasets (Syn and the S1--S4 Gaussian
benchmark sets) and four real datasets (Airline, Household, PAMAP2, Sensor).
The real datasets cannot be redistributed here, so this package provides

* :func:`repro.data.synthetic.generate_syn` -- the random-walk ``Syn``
  generator (13 density peaks in ``[0, 1e5]^2``),
* :func:`repro.data.synthetic.add_noise` -- uniform noise injection used by
  the Table 2 robustness experiment,
* :func:`repro.data.gaussian.generate_s_set` -- 15-Gaussian-cluster sets with
  a controllable overlap degree, standing in for S1--S4,
* :mod:`repro.data.real_like` -- distribution-matched synthetic stand-ins for
  the four real datasets (same dimensionality and domain, skewed multi-modal
  densities, scaled-down cardinality).

See the substitution table in DESIGN.md for why these stand-ins preserve the
behaviour the evaluation measures.
"""

from repro.data.gaussian import generate_s_set
from repro.data.real_like import (
    REAL_DATASET_SPECS,
    RealDatasetSpec,
    generate_real_like,
)
from repro.data.synthetic import add_noise, generate_blobs, generate_syn

__all__ = [
    "generate_syn",
    "generate_blobs",
    "add_noise",
    "generate_s_set",
    "generate_real_like",
    "RealDatasetSpec",
    "REAL_DATASET_SPECS",
]
