"""Synthetic stand-ins for the paper's real datasets.

The evaluation section uses four real datasets that cannot be shipped with
this repository (and whose full cardinality would be impractical for a
pure-Python reproduction anyway):

=========  ==========  ====  ==============================
dataset    points      dim   domain per dimension
=========  ==========  ====  ==============================
Airline    5,810,462    3    ``[0, 1e6]``
Household  2,049,280    4    ``[0, 1e5]``
PAMAP2     3,850,505    4    ``[0, 1e5]``
Sensor       928,991    8    ``[0, 1e5]``
=========  ==========  ====  ==============================

What the runtime and accuracy experiments actually depend on is the *shape* of
each dataset: dimensionality, domain, a skewed multi-modal density (many dense
regions of very different size plus a diffuse background), and a default
``d_cut`` small enough that ``rho_avg << n``.  :func:`generate_real_like`
produces exactly that: a mixture of Gaussian clusters whose sizes follow a
power law (skewed densities), plus a uniform background component, in the
original dimensionality and domain, at a configurable scaled-down cardinality.
The per-dataset specs also carry the paper's default ``d_cut`` rescaled to the
stand-in so experiments keep comparable ``rho_avg / n`` ratios.

See DESIGN.md (substitution table) for the full rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["RealDatasetSpec", "REAL_DATASET_SPECS", "generate_real_like"]


@dataclass(frozen=True)
class RealDatasetSpec:
    """Shape parameters of one real-dataset stand-in.

    Attributes
    ----------
    name:
        Dataset name as used in the paper.
    dim:
        Dimensionality.
    domain:
        ``(low, high)`` bounds of every dimension.
    paper_cardinality:
        Number of points in the original dataset (for documentation).
    default_points:
        Default cardinality of the stand-in.
    n_modes:
        Number of dense regions in the mixture.
    default_d_cut:
        Default cutoff distance for the stand-in, chosen so that the average
        local density stays well below the cardinality (the paper's
        ``rho_avg << n`` assumption).
    background_fraction:
        Fraction of points drawn uniformly from the domain (diffuse noise).
    """

    name: str
    dim: int
    domain: tuple[float, float]
    paper_cardinality: int
    default_points: int
    n_modes: int
    default_d_cut: float
    background_fraction: float


#: Stand-in specifications for the four real datasets.  The paper's default
#: d_cut values (1000 for Airline/Household/PAMAP2, 5000 for Sensor) are kept
#: relative to the domain; cardinalities are scaled down for pure Python.
REAL_DATASET_SPECS: dict[str, RealDatasetSpec] = {
    "airline": RealDatasetSpec(
        name="Airline",
        dim=3,
        domain=(0.0, 1e6),
        paper_cardinality=5_810_462,
        default_points=24_000,
        n_modes=40,
        default_d_cut=20_000.0,
        background_fraction=0.06,
    ),
    "household": RealDatasetSpec(
        name="Household",
        dim=4,
        domain=(0.0, 1e5),
        paper_cardinality=2_049_280,
        default_points=20_000,
        n_modes=30,
        default_d_cut=3_000.0,
        background_fraction=0.05,
    ),
    "pamap2": RealDatasetSpec(
        name="PAMAP2",
        dim=4,
        domain=(0.0, 1e5),
        paper_cardinality=3_850_505,
        default_points=22_000,
        n_modes=35,
        default_d_cut=3_000.0,
        background_fraction=0.08,
    ),
    "sensor": RealDatasetSpec(
        name="Sensor",
        dim=8,
        domain=(0.0, 1e5),
        paper_cardinality=928_991,
        default_points=12_000,
        n_modes=25,
        default_d_cut=15_000.0,
        background_fraction=0.05,
    ),
}


def generate_real_like(
    name: str,
    n_points: int | None = None,
    seed: int | None = 0,
) -> tuple[np.ndarray, RealDatasetSpec]:
    """Generate the stand-in for one of the paper's real datasets.

    Parameters
    ----------
    name:
        One of ``"airline"``, ``"household"``, ``"pamap2"``, ``"sensor"``
        (case-insensitive).
    n_points:
        Cardinality of the stand-in; the spec's default when omitted.
    seed:
        Random seed or generator.

    Returns
    -------
    tuple
        ``(points, spec)``.
    """
    key = name.lower()
    if key not in REAL_DATASET_SPECS:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(REAL_DATASET_SPECS)}"
        )
    spec = REAL_DATASET_SPECS[key]
    n_points = (
        spec.default_points if n_points is None else check_positive_int(n_points, "n_points")
    )
    rng = ensure_rng(seed)
    low, high = spec.domain
    span = high - low

    n_background = int(round(spec.background_fraction * n_points))
    n_clustered = n_points - n_background

    # Dense-region sizes follow a power law so densities are heavily skewed,
    # like the sensor/trajectory data the paper uses.
    raw_sizes = rng.pareto(1.5, size=spec.n_modes) + 1.0
    weights = raw_sizes / raw_sizes.sum()

    margin = 0.05 * span
    centers = rng.uniform(low + margin, high - margin, size=(spec.n_modes, spec.dim))
    # Region spreads vary by two orders of magnitude across modes.
    spreads = span * rng.uniform(0.004, 0.06, size=spec.n_modes)

    assignments = rng.choice(spec.n_modes, size=n_clustered, p=weights)
    offsets = rng.normal(size=(n_clustered, spec.dim))
    clustered = centers[assignments] + offsets * spreads[assignments][:, None]

    background = rng.uniform(low, high, size=(n_background, spec.dim))
    points = np.concatenate([clustered, background])
    np.clip(points, low, high, out=points)
    return points[rng.permutation(points.shape[0])], spec
