"""S-set style Gaussian benchmark generator (stand-in for S1--S4).

The S-sets of Fränti & Sieranoja contain 5,000 points drawn from 15 Gaussian
clusters in two dimensions; the only difference between S1, S2, S3 and S4 is
the degree of cluster overlap, which grows from S1 (well separated) to S4
(heavily overlapping).  Table 3 of the paper uses them to study robustness to
overlap, and Figures 1, 2 and 6 use S2 for the qualitative comparisons.

:func:`generate_s_set` reproduces that family: 15 cluster centers are placed
on a jittered grid and the per-cluster standard deviation is scaled by the
``overlap`` level (1--4).  The published coordinates are not required because
every experiment that uses the S-sets only depends on the overlap degree.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import generate_blobs
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["generate_s_set", "S_SET_OVERLAP_FRACTIONS"]

#: Domain used for the S-set stand-ins (matches the original data's order of
#: magnitude and the paper's other 2-D dataset).
S_SET_DOMAIN = (0.0, 1e6)

#: Cluster standard deviation as a fraction of the inter-center spacing, per
#: overlap level (index 1..4 -> S1..S4).  Chosen so that S1 is cleanly
#: separated and S4 overlaps heavily, mirroring Fränti & Sieranoja.
S_SET_OVERLAP_FRACTIONS = {1: 0.10, 2: 0.16, 3: 0.24, 4: 0.32}


def generate_s_set(
    overlap: int,
    n_points: int = 5_000,
    n_clusters: int = 15,
    seed: int | None = 7,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate an S1--S4 style dataset.

    Parameters
    ----------
    overlap:
        Overlap level 1--4 (higher means more overlap), standing in for
        S1--S4.
    n_points:
        Total number of points (the original sets have 5,000).
    n_clusters:
        Number of Gaussian clusters (the original sets have 15).
    seed:
        Random seed; cluster centers use a fixed sub-seed so the 15 centers
        are identical across overlap levels (as in the original family, where
        only the spread changes).

    Returns
    -------
    tuple
        ``(points, true_labels)``.
    """
    if overlap not in S_SET_OVERLAP_FRACTIONS:
        raise ValueError(
            f"overlap must be one of {sorted(S_SET_OVERLAP_FRACTIONS)}, got {overlap}"
        )
    n_points = check_positive_int(n_points, "n_points")
    n_clusters = check_positive_int(n_clusters, "n_clusters")

    low, high = S_SET_DOMAIN
    span = high - low

    # Centers on a jittered grid: identical for every overlap level.
    center_rng = ensure_rng(1234)
    grid_size = int(np.ceil(np.sqrt(n_clusters)))
    spacing = span / (grid_size + 1)
    grid_positions = [
        (low + (col + 1) * spacing, low + (row + 1) * spacing)
        for row in range(grid_size)
        for col in range(grid_size)
    ]
    chosen = center_rng.permutation(len(grid_positions))[:n_clusters]
    centers = np.asarray([grid_positions[i] for i in chosen], dtype=np.float64)
    centers += center_rng.uniform(-0.15 * spacing, 0.15 * spacing, size=centers.shape)

    spread = S_SET_OVERLAP_FRACTIONS[overlap] * spacing
    return generate_blobs(
        n_points,
        centers,
        spread,
        domain=S_SET_DOMAIN,
        seed=seed,
    )
