"""Approx-DPC: the parameter-free approximate algorithm of §4.

Approx-DPC keeps Ex-DPC's exact local densities but removes its two
weaknesses:

* **Joint range search** (§4.2).  Points in the same grid cell (side length
  ``d_cut / sqrt(d)``) have heavily overlapping range-search balls, so one
  range search per *cell* -- centred at the cell center with radius
  ``d_cut + max_{p in c} dist(center, p)`` -- returns a superset of every
  member's ball.  Each member's exact density is then obtained by scanning
  that single result set.
* **Cell-based dependent-point approximation** (§4.3).  A point that is not
  the densest of its cell takes the cell's densest point ``p*(c)`` as its
  approximate dependent point (their distance is at most ``d_cut``).  A cell
  maximum looks for a neighbouring cell whose minimum density exceeds its own;
  only the points for which neither rule applies fall back to the exact
  nearest-denser search of the unified join layer
  (:func:`repro.core.dependency_join.nearest_denser_join`: the paper's
  partition-based search for the scalar/batch engines, a dual-tree
  nearest-denser join for ``engine="dual"``).

Because the approximation only ever assigns dependent distances of exactly
``d_cut`` -- and computes the exact dependent distance whenever it exceeds
``d_cut`` -- the algorithm selects the same cluster centers as Ex-DPC for any
``delta_min > d_cut`` (Theorem 4).

Every phase is embarrassingly parallel; tasks are partitioned over threads
with the cost-based greedy LPT policy of §4.5, which is what the recorded
parallel profile reproduces.

With the default ``engine="batch"``, the joint range searches and the exact
dependency fallback are issued as chunked vectorised batch queries
(:meth:`repro.index.kdtree.KDTree.range_search_batch`,
:meth:`repro.core.dependency_join.PartitionedDependencySearcher.query_batch`)
that produce results identical to the scalar per-cell code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dependency_join import nearest_denser_join
from repro.core.framework import DensityPeaksBase
from repro.index.grid import UniformGrid, distinct_lattice_keys
from repro.index.kdtree import KDTree, check_storage_dtype
from repro.parallel.backends import kernel_joint_density, pack_tree_arrays
from repro.utils.counters import WorkCounter
from repro.utils.distance import point_to_points_sq

__all__ = ["ApproxDPC", "CellDensitySummary", "cell_density_summary"]


@dataclass
class CellDensitySummary:
    """Result of one cell's density scan (picklable; see §4.2).

    Produced by :func:`cell_density_summary` for one grid cell: the exact
    member densities read off the joint range-search result, the cell's
    densest point, the ``N(c)`` neighbour keys, and the bookkeeping the cost
    model and work counters need.
    """

    counts: np.ndarray
    best_point: int
    neighbor_keys: list[tuple[int, ...]]
    n_candidates: int
    n_distance_calcs: float


def cell_density_summary(
    points: np.ndarray,
    lattice: np.ndarray,
    members: np.ndarray,
    candidates: np.ndarray,
    d_cut_sq: float,
    cell_key: tuple[int, ...],
) -> CellDensitySummary:
    """Exact member densities and cell bookkeeping from one joint result.

    Shared by the in-process batch/scalar paths and the process-backend
    kernel (:func:`repro.parallel.backends.kernel_joint_density`), so every
    backend performs bit-identical arithmetic on identical inputs.
    """
    candidate_points = points[candidates]
    member_points = points[members]

    # Exact density of every member by scanning the shared result.
    diffs_sq = (
        np.einsum("ij,ij->i", member_points, member_points)[:, None]
        + np.einsum("ij,ij->i", candidate_points, candidate_points)[None, :]
        - 2.0 * member_points @ candidate_points.T
    )
    np.maximum(diffs_sq, 0.0, out=diffs_sq)
    counts = (diffs_sq < d_cut_sq).sum(axis=1)

    # Cell bookkeeping: densest point and N(c).
    best_pos = int(np.argmax(counts))
    best_point = int(members[best_pos])
    best_sq = point_to_points_sq(points[best_point], candidate_points)
    close = candidates[best_sq < d_cut_sq]
    neighbor_keys = distinct_lattice_keys(lattice, close, exclude=cell_key)

    n_distance_calcs = float(members.size) * float(candidates.size) + float(
        candidates.size
    )
    return CellDensitySummary(
        counts=counts,
        best_point=best_point,
        neighbor_keys=neighbor_keys,
        n_candidates=int(candidates.size),
        n_distance_calcs=n_distance_calcs,
    )


class ApproxDPC(DensityPeaksBase):
    """Approximate DPC with exact densities and cell-level dependencies (§4).

    Parameters
    ----------
    d_cut:
        Cutoff distance of Definition 1.
    rho_min, delta_min, n_clusters, n_jobs, seed, record_costs, engine:
        See :class:`repro.core.framework.DensityPeaksBase`.
    leaf_size:
        Leaf bucket size of the kd-tree.
    n_partitions:
        Number of density partitions ``s`` used by the exact dependency
        fallback.  ``None`` (default) applies Equation (2) of the paper.
    dtype:
        Point-storage dtype of the kd-tree (``"float64"`` or ``"float32"``).
    """

    algorithm_name = "Approx-DPC"

    def __init__(
        self,
        d_cut: float,
        *,
        rho_min: float | None = None,
        delta_min: float | None = None,
        n_clusters: int | None = None,
        n_jobs: int = 1,
        backend: str | None = None,
        seed: int | None = 0,
        record_costs: bool = True,
        leaf_size: int = 32,
        n_partitions: int | None = None,
        engine: str | None = None,
        dtype: str = "float64",
        dual_frontier=None,
        kernel: str | None = None,
    ):
        super().__init__(
            d_cut,
            rho_min=rho_min,
            delta_min=delta_min,
            n_clusters=n_clusters,
            n_jobs=n_jobs,
            backend=backend,
            seed=seed,
            record_costs=record_costs,
            engine=engine,
            dual_frontier=dual_frontier,
            kernel=kernel,
        )
        self.leaf_size = leaf_size
        self.n_partitions = n_partitions
        self.dtype = check_storage_dtype(dtype).name
        self._tree: KDTree | None = None
        self._grid: UniformGrid | None = None
        self._fallback_memory = 0

    # ------------------------------------------------------------------ index

    def _build_index(self, points: np.ndarray) -> None:
        self._tree = KDTree(
            points,
            leaf_size=self.leaf_size,
            counter=self._counter,
            dtype=self.dtype,
            kernel=self.kernel,
        )
        cell_side = self.d_cut / np.sqrt(points.shape[1])
        self._grid = UniformGrid(points, cell_side)
        self._fallback_memory = 0

    def get_params(self):
        params = super().get_params()
        params["leaf_size"] = self.leaf_size
        params["n_partitions"] = self.n_partitions
        params["dtype"] = self.dtype
        return params

    def _index_memory_bytes(self) -> int:
        total = 0
        if self._tree is not None:
            total += self._tree.memory_bytes()
        if self._grid is not None:
            total += self._grid.memory_bytes()
        return total + self._fallback_memory

    def _shared_arrays(self):
        arrays = pack_tree_arrays(self._tree)
        arrays["lattice"] = self._grid.lattice
        return arrays

    # ---------------------------------------------------------------- density

    def _compute_local_density(self, points: np.ndarray) -> np.ndarray:
        tree = self._tree
        grid = self._grid
        lattice = grid.lattice
        n = points.shape[0]
        d_cut = self.d_cut
        d_cut_sq = d_cut * d_cut
        rho = np.zeros(n, dtype=np.float64)

        cells = grid.cells()
        range_costs = np.zeros(len(cells), dtype=np.float64)
        scan_costs = np.zeros(len(cells), dtype=np.float64)

        def summarize(position: int, candidates: np.ndarray) -> CellDensitySummary:
            cell = cells[position]
            summary = cell_density_summary(
                points, lattice, cell.point_indices, candidates, d_cut_sq, cell.key
            )
            self._counter.add("distance_calcs", summary.n_distance_calcs)
            return summary

        if self.engine_ == "dual":
            # Dual-tree joint range search (§4.2 over node pairs): one
            # simultaneous traversal of a small tree over the cell centers
            # (with per-center radii) against the point tree answers every
            # cell's joint search at once, producing the exact candidate
            # sets the batch engine materialises.  The join runs driver-side
            # -- it is cheap and backend-invariant -- and the per-cell
            # density scans are parallelised over cell chunks as usual
            # (threads under the process backend; the scan is identical
            # arithmetic on identical inputs on every backend).
            centers = np.stack([cell.center for cell in cells])
            radii = np.asarray(
                [d_cut + cell.max_center_dist for cell in cells], dtype=np.float64
            )
            centers_tree = KDTree(
                centers,
                leaf_size=self.leaf_size,
                counter=WorkCounter(),
                dtype=tree.dtype_name,
                kernel=tree.kernel_name,
            )
            candidate_lists = tree.range_search_dual_vs(
                centers_tree, radii, strict=False
            )

            def scan_cell_chunk(chunk: np.ndarray) -> list[CellDensitySummary]:
                return [
                    summarize(int(position), candidate_lists[int(position)])
                    for position in chunk
                ]

            chunk_summaries = self._executor.map_index_chunks(
                scan_cell_chunk, len(cells)
            )
            summaries = [summary for chunk in chunk_summaries for summary in chunk]
        elif self.engine_ == "batch":
            centers = np.stack([cell.center for cell in cells])
            radii = np.asarray(
                [d_cut + cell.max_center_dist for cell in cells], dtype=np.float64
            )

            # Process-backend descriptor: the payload is sliced per chunk so
            # each submission carries only its own cells' centers/radii/
            # members; the tree and lattice travel through shared memory.
            def payload_fn(chunk: np.ndarray) -> dict:
                return {
                    "d_cut": d_cut,
                    "centers": centers[chunk],
                    "radii": radii[chunk],
                    "members": [cells[int(p)].point_indices for p in chunk],
                    "cell_keys": [cells[int(p)].key for p in chunk],
                }

            task = self._process_task(kernel_joint_density, payload_fn=payload_fn)

            def process_cell_chunk(chunk: np.ndarray) -> list[CellDensitySummary]:
                # One batch kd-tree traversal answers the joint range search
                # of every cell in the chunk.
                candidate_lists = tree.range_search_batch(
                    centers[chunk], radii[chunk], strict=False
                )
                return [
                    summarize(int(position), candidates)
                    for position, candidates in zip(chunk, candidate_lists)
                ]

            chunk_summaries = self._executor.map_index_chunks(
                process_cell_chunk, len(cells), task=task
            )
            summaries = [summary for chunk in chunk_summaries for summary in chunk]
        else:
            def process_cell(position: int) -> CellDensitySummary:
                cell = cells[position]
                # Joint range search: one kd-tree query whose ball covers
                # every member's d_cut-ball.
                radius = d_cut + cell.max_center_dist
                candidates = tree.range_search(cell.center, radius, strict=False)
                return summarize(position, candidates)

            summaries = self._executor.map(process_cell, list(range(len(cells))))

        # Scatter the (backend-agnostic) per-cell summaries: exact member
        # densities, densest point, density extrema, N(c), and the §4.5 cost
        # model inputs.
        for position, (cell, summary) in enumerate(zip(cells, summaries)):
            members = cell.point_indices
            rho[members] = summary.counts
            cell.best_point = summary.best_point
            cell.min_density = float(summary.counts.min())
            cell.max_density = float(summary.counts.max())
            cell.neighbor_cells = summary.neighbor_keys
            range_costs[position] = members.size
            scan_costs[position] = members.size * max(summary.n_candidates, 1)

        # §4.5: the range-search pass is balanced by |P(c)|, the scan pass by
        # |P(c)| * |R(...)|; both use the greedy LPT partitioner.
        self._record_phase("local_density:range", "greedy", range_costs)
        self._record_phase("local_density:scan", "greedy", scan_costs)
        return rho

    # ------------------------------------------------------------ dependencies

    def _compute_dependencies(
        self, points: np.ndarray, rho: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        grid = self._grid
        n = points.shape[0]
        d_cut = self.d_cut

        dependent = np.full(n, -1, dtype=np.intp)
        delta = np.full(n, np.inf, dtype=np.float64)
        exact_mask = np.zeros(n, dtype=bool)
        undecided: list[int] = []

        # Refresh per-cell extrema against the tie-broken densities so that the
        # "denser" relation used below is a strict total order.
        for cell in grid:
            members = cell.point_indices
            member_rho = rho[members]
            cell.best_point = int(members[int(np.argmax(member_rho))])
            cell.min_density = float(member_rho.min())
            cell.max_density = float(member_rho.max())

        # Approximate rules (O(1) per point).
        for cell in grid:
            best = cell.best_point
            for index in cell.point_indices:
                index = int(index)
                if index != best:
                    dependent[index] = best
                    delta[index] = d_cut
                    continue
                # Cell maximum: look for a neighbouring cell that is denser
                # everywhere.
                assigned = False
                for key in cell.neighbor_cells:
                    other = grid.cell(key)
                    if other.min_density > rho[index]:
                        dependent[index] = other.best_point
                        delta[index] = d_cut
                        assigned = True
                        break
                if not assigned:
                    undecided.append(index)

        approx_count = n - len(undecided)
        self._record_phase(
            "dependency:approx", "greedy", np.ones(max(approx_count, 1))
        )

        # Exact fallback for the undecided cell maxima (§4.3, "Exact
        # computation"), routed through the unified nearest-denser join.
        if undecided:
            undecided_arr = np.asarray(undecided, dtype=np.intp)
            outcome = nearest_denser_join(
                points,
                rho,
                engine=self.engine_,
                executor=self._executor,
                counter=self._counter,
                query_indices=undecided_arr,
                tree=self._tree,
                leaf_size=self.leaf_size,
                n_partitions=self.n_partitions,
                frontier_target=self.dual_frontier_,
                process_task_builder=self._process_task,
            )
            dependent[undecided_arr] = outcome.dependent
            delta[undecided_arr] = outcome.delta
            exact_mask[undecided_arr] = True
            self._fallback_memory = outcome.memory_bytes
            self._record_phase("dependency:exact", "greedy", outcome.cost_estimates)

        return dependent, delta, exact_mask
