"""Unified nearest-denser join layer: one engine for every dependency search.

The dependency phase of density-peaks clustering asks, for each query point,
for the *nearest point with strictly higher local density* (Definitions 2-3).
Historically that search was scattered over three divergent code paths -- the
partition-based per-point/batch queries of the fit fallbacks (§4.3), the
escalating-kNN attachment pass of ``predict``, and the brute-force dirty-set
repair of the streaming layer.  This module owns all of them behind one
``engine={"scalar", "batch", "dual"}`` dispatch, mirroring the density
phase:

* ``"scalar"`` / ``"batch"`` -- the paper's partition-based exact search
  (:class:`PartitionedDependencySearcher`): density-ordered partitions,
  per-partition kd-trees, one NN search or one vectorised scan per
  (query, partition) pair.
* ``"dual"`` -- a bulk *nearest-denser join*
  (:meth:`repro.index.kdtree.KDTree.nn_dual_vs` /
  :meth:`~repro.index.kdtree.KDTree.range_nn_dual`): one simultaneous
  traversal of a query tree against the data tree, carrying per-query
  best-distance bounds and per-node density maxima so whole subtrees with no
  denser points prune in a single box test -- the same "one structured
  traversal instead of n lookups" move the density self-join makes.

Shared exactness contract
-------------------------
Every engine -- and every other nearest-denser code path in the library
(Ex-DPC's incremental tree, :func:`repro.core.predict.nearest_denser_targets`,
:func:`repro.core.predict.nearest_denser_bruteforce`) -- selects candidates by
lexicographic **(squared distance, point index)**, computes squared distances
with the canonical sequential arithmetic of :mod:`repro.kernels`, and runs
the comparison in float64 regardless of the tree storage dtype.  Results are
therefore bit-for-bit identical across engines (dependencies, deltas and
labels), including on duplicate-heavy data with exact distance ties; the
property suite ``tests/property/test_dependency_join_equivalence.py`` locks
that in.

Backend determinism
-------------------
The dual join is decomposed into independent query-subtree work units
(:meth:`~repro.index.kdtree.KDTree.node_frontier`); each unit's traversal is
per-query deterministic, so any grouping of units onto serial, thread or
process workers reproduces identical results *and* identical work counters.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

import numpy as np

from repro.core.predict import nearest_denser_bruteforce, nearest_denser_targets
from repro.index.kdtree import (
    DUAL_FRONTIER_AUTO,
    KDTree,
    adaptive_dual_frontier,
    resolve_dual_frontier,
)
from repro.kernels import pair_distances_sq
from repro.parallel.backends import kernel_dual_nn, kernel_partitioned_dependency
from repro.utils.counters import WorkCounter

__all__ = [
    "JoinOutcome",
    "PartitionedDependencySearcher",
    "attach_targets",
    "build_join_trees",
    "nearest_denser_join",
    "repair_nearest_denser",
    "solve_partition_count",
]

#: Minimum ``|queries| * |data|`` brute-force work at which the streaming
#: repair builds throwaway kd-trees and runs the dual join instead of the
#: vectorised scan.  Below it the scan's single blocked kernel beats two
#: tree builds.
_DUAL_REPAIR_MIN_WORK = 1 << 18


def solve_partition_count(n: int, dim: int) -> int:
    """Return the partition count ``s`` implied by Equation (2) of the paper.

    Equation (2) asks for ``n/s = Theta((s-1)(n/s)^{1-1/d})``, i.e.
    ``(n/s)^{1/d} = Theta(s-1)``, whose solution grows like ``n^{1/(d+1)}``.
    The result is clamped to ``[2, n]`` so small inputs stay valid.
    """
    if n <= 2:
        return max(1, n)
    s = int(round(n ** (1.0 / (dim + 1.0)))) + 1
    return int(min(max(s, 2), n))


@dataclass
class _Partition:
    """One density slice ``P_j`` with its kd-tree.

    ``member_indices`` is stored sorted ascending by *global point index*
    (the density slicing only decides membership), so the per-partition
    kd-tree's local smallest-index tie-break coincides with the global one.
    """

    member_indices: np.ndarray
    min_rho: float
    max_rho: float
    tree: KDTree


class PartitionedDependencySearcher:
    """Exact dependent-point queries over density-ordered partitions (§4.3).

    The paper sorts the candidate set in ascending density order, splits it
    into ``s`` equal slices (Equation (2)), builds a kd-tree per slice and
    classifies every (query, partition) pair: a wholly denser partition is
    answered with one nearest-neighbour search (case i), the single
    straddling partition with a vectorised scan of its denser members
    (case ii), and wholly at-most-as-dense partitions are skipped (case
    iii).  Exact distance ties resolve to the smallest global point index
    and all arithmetic follows the shared join contract (module docstring),
    so the scalar and batch engines agree bit for bit with each other and
    with the dual join.

    Parameters
    ----------
    points:
        The full point matrix of shape ``(n, d)``.
    rho:
        Tie-broken local densities (all distinct).
    candidate_indices:
        Optional subset of points allowed to serve as dependent points
        (S-Approx-DPC restricts candidates to the picked points); ``None``
        means every point is a candidate.
    n_partitions:
        Number of density slices ``s``; defaults to Equation (2).
    leaf_size:
        kd-tree leaf size for the per-partition trees.
    """

    def __init__(
        self,
        points: np.ndarray,
        rho: np.ndarray,
        *,
        candidate_indices: np.ndarray | None = None,
        n_partitions: int | None = None,
        leaf_size: int = 32,
        counter: WorkCounter | None = None,
    ):
        self._points = points
        self._rho = rho
        self._counter = counter if counter is not None else WorkCounter()
        self._leaf_size = int(leaf_size)
        if candidate_indices is None:
            candidates = np.arange(points.shape[0], dtype=np.intp)
            self._candidate_indices = None
        else:
            candidates = np.asarray(candidate_indices, dtype=np.intp)
            self._candidate_indices = candidates
        if candidates.size == 0:
            raise ValueError("candidate set must not be empty")

        order = candidates[np.argsort(rho[candidates], kind="stable")]
        count = order.shape[0]
        dim = points.shape[1]
        s = (
            solve_partition_count(count, dim)
            if n_partitions is None
            else max(1, min(int(n_partitions), count))
        )
        self._n_partitions = s

        bounds = np.linspace(0, count, s + 1, dtype=int)
        self._partitions: list[_Partition] = []
        for j in range(s):
            members = order[bounds[j] : bounds[j + 1]]
            if members.size == 0:
                continue
            min_rho = float(rho[members].min())
            max_rho = float(rho[members].max())
            members = np.sort(members)  # index order: local lex == global lex
            self._partitions.append(
                _Partition(
                    member_indices=members,
                    min_rho=min_rho,
                    max_rho=max_rho,
                    tree=KDTree(points[members], leaf_size=leaf_size, counter=self._counter),
                )
            )

    @property
    def n_partitions(self) -> int:
        """Number of density slices actually built."""
        return len(self._partitions)

    @property
    def counter(self) -> WorkCounter:
        """The work counter queries report into."""
        return self._counter

    def shared_query_params(self) -> dict:
        """Small picklable parameters from which a worker can rebuild this searcher.

        Construction is deterministic in ``(points, rho, candidate_indices,
        n_partitions, leaf_size)``, so a worker holding the shared point
        matrix reproduces identical partitions and kd-trees; the resolved
        partition count is passed so Equation (2) is not re-derived.
        """
        return {
            "rho": self._rho,
            "candidates": self._candidate_indices,
            "n_partitions": self._n_partitions,
            "leaf_size": self._leaf_size,
        }

    def memory_bytes(self) -> int:
        """Approximate footprint of the per-partition kd-trees."""
        return int(
            sum(
                part.tree.memory_bytes() + part.member_indices.nbytes
                for part in self._partitions
            )
        )

    def query_costs(self, rho_values) -> np.ndarray:
        """Vectorised ``cost_dep`` estimates (§4.5) for an array of densities.

        ``n/s + (m-1)(n/s)^{1-1/d}`` when some partition straddles the
        density (case ii), ``m (n/s)^{1-1/d}`` otherwise, where ``m`` is the
        number of partitions that may contain the dependent point.
        """
        rho_values = np.asarray(rho_values, dtype=np.float64).reshape(-1)
        if not self._partitions:
            return np.zeros(rho_values.shape[0])
        dim = self._points.shape[1]
        avg_size = float(
            np.mean([part.member_indices.size for part in self._partitions])
        )
        nn_cost = avg_size ** (1.0 - 1.0 / dim)
        mins = np.asarray([part.min_rho for part in self._partitions])
        maxs = np.asarray([part.max_rho for part in self._partitions])
        active = maxs[None, :] > rho_values[:, None]
        m = active.sum(axis=1)
        straddles = (active & ~(mins[None, :] > rho_values[:, None])).any(axis=1)
        return np.where(
            m == 0,
            nn_cost,
            np.where(straddles, avg_size + (m - 1) * nn_cost, m * nn_cost),
        )

    def query_cost(self, rho_value: float) -> float:
        """The paper's ``cost_dep`` estimate (§4.5) for one query density."""
        return float(self.query_costs([rho_value])[0])

    def query(self, index: int) -> tuple[int, float]:
        """Return ``(dependent_index, distance)`` for the point ``index``.

        Returns ``(-1, inf)`` when no candidate has higher density (the
        globally densest point).  Delegates to :meth:`query_batch` so the
        scalar and batch engines share one classification and one arithmetic
        path -- bit-for-bit equality by construction.
        """
        neighbors, distances = self.query_batch([index])
        return int(neighbors[0]), float(distances[0])

    def query_batch(self, indices) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised exact dependent-point search for a batch of queries.

        Classifies every (query, partition) pair into the paper's three
        cases at once: case (i) pairs are answered with one batch
        nearest-neighbour search per partition, case (ii) pairs with a
        single vectorised scan of the straddling partition, and case (iii)
        pairs are skipped.  Returns ``(dependent_indices, distances)``
        (``-1`` / ``inf`` for the globally densest candidate); ties resolve
        by the smallest global index per the shared join contract.
        """
        indices = np.asarray(indices, dtype=np.intp).reshape(-1)
        n_queries = indices.size
        best_idx = np.full(n_queries, -1, dtype=np.intp)
        best_sq = np.full(n_queries, np.inf)
        if n_queries == 0:
            return best_idx, best_sq.copy()

        def merge(rows: np.ndarray, cand_idx: np.ndarray, cand_sq: np.ndarray) -> None:
            better = (cand_sq < best_sq[rows]) | (
                (cand_sq == best_sq[rows]) & (cand_idx < best_idx[rows])
            )
            targets = rows[better]
            best_sq[targets] = cand_sq[better]
            best_idx[targets] = cand_idx[better]

        query_points = self._points[indices]
        query_rho = self._rho[indices]
        for part in self._partitions:
            active = part.max_rho > query_rho
            if not active.any():
                continue
            denser_all = part.min_rho > query_rho
            case_i = np.flatnonzero(active & denser_all)
            case_ii = np.flatnonzero(active & ~denser_all)
            if case_i.size:
                # Batch NN on the partition tree; the impl returns *squared*
                # distances, so no sqrt/square round trip perturbs the lex
                # comparison against the scan candidates.
                tree = part.tree
                local_idx, local_sq = tree._knn_batch_impl(
                    tree._check_query_batch(query_points[case_i]), 1, None, None
                )
                found = local_idx[:, 0] >= 0
                rows = case_i[found]
                merge(
                    rows,
                    part.member_indices[local_idx[found, 0]],
                    local_sq[found, 0],
                )
            if case_ii.size:
                members = part.member_indices
                eligible = self._rho[members][None, :] > query_rho[case_ii, None]
                self._counter.add("distance_calcs", float(eligible.sum()))
                d_sq = pair_distances_sq(
                    query_points[case_ii], self._points[members]
                )
                d_sq = np.where(eligible, d_sq, np.inf)
                cand_sq = d_sq.min(axis=1)
                has = np.isfinite(cand_sq)
                if not has.any():
                    continue
                cand_idx = np.where(
                    d_sq == cand_sq[:, None],
                    members[None, :],
                    np.iinfo(np.intp).max,
                ).min(axis=1)
                merge(case_ii[has], cand_idx[has], cand_sq[has])

        return best_idx, np.sqrt(best_sq)


@dataclass
class JoinOutcome:
    """Result of one :func:`nearest_denser_join` call.

    ``dependent`` / ``delta`` are aligned with the query set (``-1`` /
    ``inf`` for queries with no denser candidate); ``memory_bytes`` is the
    footprint of any auxiliary index built for the join and
    ``cost_estimates`` feeds the caller's parallel-phase profile.
    """

    dependent: np.ndarray
    delta: np.ndarray
    memory_bytes: int
    cost_estimates: np.ndarray


def nearest_denser_join(
    points: np.ndarray,
    rho: np.ndarray,
    *,
    engine: str,
    executor,
    counter: WorkCounter,
    query_indices=None,
    candidate_indices=None,
    tree: KDTree | None = None,
    leaf_size: int = 32,
    n_partitions: int | None = None,
    frontier_target: int | None = None,
    process_task_builder=None,
    seed_dependent=None,
    seed_delta_sq=None,
) -> JoinOutcome:
    """Resolve the exact nearest-denser point of every query (fit phase).

    This is the single entry point of the fit-time dependency searches:
    Ex-DPC's full dependency phase (``query_indices=None``: every point
    queries), Approx-DPC's undecided cell maxima, and S-Approx-DPC's
    partitioned second phase (``candidate_indices`` restricted to picked
    points).  ``engine`` selects the strategy -- partition-based
    (``"scalar"`` maps per-point queries, ``"batch"`` maps vectorised query
    chunks) or the dual-tree nearest-denser join (``"dual"``) -- and
    ``executor`` / ``process_task_builder`` plumb the estimator's execution
    backend through, so results and work counters are identical on serial,
    thread and process backends.

    ``tree`` is the caller's fitted kd-tree over *all* points; the dual
    engine joins against it directly when the candidate set is unrestricted
    and builds a float64 candidate tree otherwise.

    ``seed_dependent`` / ``seed_delta_sq`` (both or neither, one entry per
    query in ``query_indices`` order) optionally seed the dual traversal's
    per-query best bounds with known denser candidates (``-1`` / ``inf`` for
    unseeded queries); see :meth:`repro.index.kdtree.KDTree.nn_dual_vs`.
    Seeds are a pure pruning hint -- every engine returns bit-identical
    results with or without them -- and require the unrestricted candidate
    set.
    """
    n = points.shape[0]
    if (seed_dependent is None) != (seed_delta_sq is None):
        raise ValueError("seed_dependent and seed_delta_sq must be given together")
    if seed_dependent is not None and candidate_indices is not None:
        raise ValueError("join seeds require the unrestricted candidate set")
    qi = (
        None
        if query_indices is None
        else np.asarray(query_indices, dtype=np.intp).reshape(-1)
    )
    n_q = n if qi is None else qi.size
    if n_q == 0:
        return JoinOutcome(
            dependent=np.empty(0, dtype=np.intp),
            delta=np.empty(0, dtype=np.float64),
            memory_bytes=0,
            cost_estimates=np.empty(0, dtype=np.float64),
        )

    if engine == "dual":
        frontier = resolve_dual_frontier(frontier_target)
        if frontier == DUAL_FRONTIER_AUTO:
            # Scale-aware deterministic default: a function of the query
            # count and leaf size only, so results replay identically.
            frontier = adaptive_dual_frontier(n_q, leaf_size)
        dependent, delta, memory_bytes = _dual_join(
            points,
            rho,
            qi,
            candidate_indices,
            tree,
            leaf_size,
            frontier,
            executor,
            counter,
            process_task_builder,
            seed_dependent,
            seed_delta_sq,
        )
        return JoinOutcome(
            dependent=dependent,
            delta=delta,
            memory_bytes=memory_bytes,
            cost_estimates=np.ones(n_q, dtype=np.float64),
        )

    searcher = PartitionedDependencySearcher(
        points,
        rho,
        candidate_indices=candidate_indices,
        n_partitions=n_partitions,
        leaf_size=leaf_size,
        counter=counter,
    )
    q_arr = qi if qi is not None else np.arange(n, dtype=np.intp)
    if engine == "batch":
        task = None
        if process_task_builder is not None:
            # Under the process backend the searcher itself is not pickled:
            # each worker rebuilds it once per phase (cached by the token in
            # the payload) from the shared point matrix plus the small
            # deterministic construction parameters.
            payload = {
                "token": secrets.token_hex(8),
                "undecided": q_arr,
                **searcher.shared_query_params(),
            }
            task = process_task_builder(kernel_partitioned_dependency, payload)

        def resolve_chunk(chunk: np.ndarray):
            return searcher.query_batch(q_arr[chunk])

        # On the process path the payload above is O(n) and re-pickled per
        # submission, so one chunk per worker beats the default
        # oversubscription; the thread path pickles nothing and keeps the
        # finer default split for skew tolerance.
        resolutions = executor.map_index_chunks(
            resolve_chunk,
            n_q,
            chunks_per_worker=1 if task is not None else 4,
            task=task,
        )
        dependent = np.concatenate([r[0] for r in resolutions])
        delta = np.concatenate([r[1] for r in resolutions])
    else:
        def resolve(index: int) -> tuple[int, float]:
            return searcher.query(int(index))

        resolved = executor.map(resolve, list(q_arr))
        dependent = np.asarray([r[0] for r in resolved], dtype=np.intp)
        delta = np.asarray([r[1] for r in resolved], dtype=np.float64)

    return JoinOutcome(
        dependent=dependent,
        delta=delta,
        memory_bytes=searcher.memory_bytes(),
        cost_estimates=searcher.query_costs(rho[q_arr]),
    )


def build_join_trees(
    points: np.ndarray,
    rho: np.ndarray,
    qi: np.ndarray | None,
    candidate_indices,
    leaf_size: int,
    *,
    data_tree: KDTree | None = None,
    counter: WorkCounter | None = None,
) -> tuple[KDTree, np.ndarray, KDTree, np.ndarray, np.ndarray | None]:
    """Construct the (data, query) tree pair of one dual nearest-denser join.

    Returns ``(data_tree, rho_data, queries_tree, rho_q, cand_sorted)``.
    This is the SINGLE construction path shared by the driver
    (:func:`_dual_join`) and the process-backend worker
    (:func:`repro.parallel.backends.kernel_dual_nn`): construction is
    deterministic in its inputs, so a worker rebuilding the trees from the
    shared point matrix reproduces the driver's node ids -- and therefore
    its frontier decomposition -- exactly.  ``data_tree`` (the caller's
    fitted tree, or the worker's shared-memory view) is adopted when the
    candidate set is unrestricted; candidate subsets build a float64 tree
    over the candidates sorted ascending, so the candidate tree's local
    index order -- the tie-break order of the join -- matches the global
    index order.
    """
    # Auxiliary trees inherit the caller tree's kernel tier (all tiers are
    # bit-identical, but the whole join should run on the tier the caller
    # selected, not silently fall back to the environment default).
    kernel = data_tree.kernel_name if data_tree is not None else None
    if candidate_indices is None:
        cand_sorted = None
        if data_tree is None:
            data_tree = KDTree(
                points, leaf_size=leaf_size, counter=counter, kernel=kernel
            )
        rho_data = rho
    else:
        cand_sorted = np.sort(np.asarray(candidate_indices, dtype=np.intp))
        data_tree = KDTree(
            points[cand_sorted], leaf_size=leaf_size, counter=counter, kernel=kernel
        )
        rho_data = rho[cand_sorted]

    if qi is None and cand_sorted is None:
        queries_tree = data_tree
        rho_q = rho
    else:
        q_arr = qi if qi is not None else np.arange(points.shape[0], dtype=np.intp)
        queries_tree = KDTree(
            points[q_arr],
            leaf_size=leaf_size,
            counter=WorkCounter(),
            kernel=data_tree.kernel_name,
        )
        rho_q = rho[q_arr]
    return data_tree, rho_data, queries_tree, rho_q, cand_sorted


def _dual_join(
    points: np.ndarray,
    rho: np.ndarray,
    qi: np.ndarray | None,
    candidate_indices,
    tree: KDTree | None,
    leaf_size: int,
    frontier_target: int,
    executor,
    counter: WorkCounter,
    process_task_builder,
    seed_dependent=None,
    seed_delta_sq=None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Dual-tree nearest-denser join over the query-subtree frontier."""
    data_tree, rho_data, queries_tree, rho_q, cand_sorted = build_join_trees(
        points, rho, qi, candidate_indices, leaf_size,
        data_tree=tree, counter=counter,
    )
    memory_bytes = 0
    if data_tree is not tree:
        memory_bytes += data_tree.memory_bytes()
    if queries_tree is not data_tree:
        memory_bytes += queries_tree.memory_bytes()
    n_q = rho_q.shape[0]

    q_nodes = queries_tree.node_frontier(frontier_target)
    task = None
    if process_task_builder is not None:
        token = secrets.token_hex(8)

        def payload_fn(chunk: np.ndarray) -> dict:
            return {
                "token": token,
                "rho": rho,
                "undecided": qi,
                "candidates": cand_sorted,
                "leaf_size": leaf_size,
                "q_nodes": q_nodes[chunk],
            }

        task = process_task_builder(kernel_dual_nn, payload_fn=payload_fn)

    def join_chunk(chunk: np.ndarray):
        idx, dist = data_tree.nn_dual_vs(
            queries_tree,
            rho_data,
            rho_q,
            q_nodes=q_nodes[chunk],
            seed_idx=seed_dependent,
            seed_sq=seed_delta_sq,
        )
        cov = queries_tree.node_positions(q_nodes[chunk])
        return cov, idx[cov], dist[cov]

    results = executor.map_index_chunks(
        join_chunk,
        len(q_nodes),
        chunks_per_worker=1 if task is not None else 4,
        task=task,
    )
    dependent = np.full(n_q, -1, dtype=np.intp)
    delta = np.full(n_q, np.inf, dtype=np.float64)
    for cov, idx, dist in results:
        dependent[cov] = idx
        delta[cov] = dist
    if cand_sorted is not None:
        dependent = np.where(
            dependent >= 0, cand_sorted[np.clip(dependent, 0, None)], -1
        )
    return dependent, delta, memory_bytes


def attach_targets(
    tree: KDTree,
    rho_train,
    queries: np.ndarray,
    rho_q: np.ndarray,
    *,
    engine: str,
    executor,
    process_task=None,
) -> np.ndarray:
    """Dependency target of each out-of-sample query (``predict`` phase).

    Queries denser than every fitted point attach to their plain nearest
    neighbour (serving cannot mint new clusters).  The batch/scalar engines
    run the escalating-kNN search in executor chunks (``process_task`` ships
    it to worker processes); the dual engine joins a throwaway tree over the
    queries against the fitted tree in one driver-side traversal, which is
    backend-invariant by construction.  Both return identical targets.
    """
    rho_train = np.asarray(rho_train, dtype=np.float64)
    n_q = queries.shape[0]
    if n_q == 0:
        return np.empty(0, dtype=np.intp)
    if engine == "dual":
        queries_tree = KDTree(
            queries,
            leaf_size=tree.leaf_size,
            counter=WorkCounter(),
            kernel=tree.kernel_name,
        )
        targets, _ = tree.nn_dual_vs(queries_tree, rho_train, rho_q)
        unresolved = np.flatnonzero(targets < 0)
        if unresolved.size:
            nn_idx, _ = tree.nearest_neighbor_batch(queries[unresolved])
            targets[unresolved] = nn_idx
        return targets

    def attach_chunk(chunk: np.ndarray) -> np.ndarray:
        return nearest_denser_targets(tree, rho_train, queries[chunk], rho_q[chunk])

    chunks = executor.map_index_chunks(attach_chunk, n_q, task=process_task)
    return np.concatenate(chunks).astype(np.intp)


def repair_nearest_denser(
    points: np.ndarray,
    rho: np.ndarray,
    queries: np.ndarray,
    rho_q: np.ndarray,
    *,
    engine: str,
    counter: WorkCounter | None = None,
    leaf_size: int = 32,
    kernel: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Recompute ``(dependent, delta)`` for a streaming dirty set.

    The streaming layer's repair is the same nearest-denser join over the
    current window (no attach fallback: a point denser than all others is
    the forest root).  Small dirty sets run the vectorised brute-force scan;
    with ``engine="dual"`` and enough work to amortise two tree builds, the
    dual join takes over.  Both paths follow the shared contract, so the
    choice never changes a single bit of the result.
    """
    n = points.shape[0]
    n_q = queries.shape[0]
    if (
        engine == "dual"
        and n_q
        and float(n_q) * float(n) >= _DUAL_REPAIR_MIN_WORK
    ):
        data_tree = KDTree(points, leaf_size=leaf_size, counter=counter, kernel=kernel)
        queries_tree = KDTree(
            queries, leaf_size=leaf_size, counter=WorkCounter(), kernel=kernel
        )
        return data_tree.nn_dual_vs(queries_tree, rho, rho_q)
    return nearest_denser_bruteforce(
        points,
        rho,
        queries,
        rho_q,
        attach_fallback=False,
        counter=counter,
        return_distance=True,
    )
