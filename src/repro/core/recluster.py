"""Re-cluster-at-any-parameter index with exact threshold semantics.

The paper's workflow is interactive: an analyst tours the decision graph
(Figures 1 and 8) moving ``d_cut``, ``rho_min`` and ``delta_min`` until the
clustering looks right.  A naive tour refits from scratch at every move.
Following the shape of FINEX (SIGMOD '23) -- persist enough per-point
structure at fit time that any later parameter choice is a lookup plus a
relabel, not a recomputation -- :class:`ReclusterIndex` makes the tour a
sub-second loop over one fitted Ex-DPC model while keeping the *exact*
semantics of a cold fit:

* **Density profiles.**  At build time the fitted kd-tree extracts, per
  point, the sorted squared distances of every neighbor strictly within a
  configurable ``d_cut_max``
  (:meth:`repro.index.kdtree.KDTree.range_profile_batch`, the same hit
  predicate and arithmetic as the fit-time density engines).  The local
  density at any ``d_cut <= d_cut_max`` is then one vectorised binary search
  per point over the profile matrix -- no tree traversal.
* **Jitter replay.**  The fit's density tie-break jitter is kept (and
  snapshotted), so the tie-broken densities at a new ``d_cut`` are
  ``new_counts + same_jitter`` -- bit-identical to what a cold fit at that
  ``d_cut`` would draw from the same seed.
* **Forest repair from the profiles.**  The fitted dependency forest
  (``dependent_raw_``, ``delta_``) is kept, and repaired only where the
  density *order* changed: each profile row also stores its neighbors in
  the dependency join's float64 lexicographic ``(squared distance, index)``
  order, so a point's exact new dependent is simply the first row entry
  that is denser under the new densities -- one vectorised sweep over the
  profile entries, no tree traversal.  Only points whose nearest denser
  point may lie beyond ``d_cut_max`` (no denser profile entry, or a resolved
  pair inside the float32 boundary margin, see below) fall back to the real
  join (:func:`repro.core.dependency_join.nearest_denser_join`) -- typically
  a fraction of a percent of the data.
* **O(n) relabel.**  Any ``(rho_min, delta_min)`` / ``n_clusters``
  decision-graph cut reuses :func:`repro.core.assignment.assign_clusters`
  over the repaired forest: pure O(n), no distance computation at all.

Exactness argument for the profile repair: the join defines ``dependent(i)``
as the lexicographic minimum of ``(float64 squared distance, index)`` over
all points denser than ``i``.  If any profile entry of row ``i`` is denser,
the global lex-minimum lies at most that far away; the row contains *every*
point within ``d_cut_max``, so the first denser entry in the row's lex order
is the global answer, and its delta is the same ``sqrt`` of the same float64
squared distance the join would produce.  One caveat guards float32 trees:
profile membership is decided in *storage* arithmetic (that is what makes
the density counts exact), so a point whose float32 distance rounds to just
above the cap could in principle be missing from the row while its float64
distance sorts just below a resolved entry near the cap.  The index
therefore computes a rigorous safety bound ``safe_sq64`` from the data's
coordinate magnitudes (worst-case float32 representation-plus-arithmetic
error): any resolved pair with float64 squared distance below ``safe_sq64``
is provably unaffected by the boundary, anything at or beyond it is re-run
through the join.  On float64 trees storage and join arithmetic coincide and
the margin is zero.

Memory: the profiles cost ``O(sum_i rho_i(d_cut_max))`` entries (one squared
distance in the tree's storage dtype plus one index each); see
``docs/recluster.md`` for the cost model versus ``d_cut_max``.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.core.assignment import assign_clusters
from repro.core.dependency_join import nearest_denser_join
from repro.core.result import DPCResult, canonical_rho_raw
from repro.index.kdtree import _block_pair_distances_sq
from repro.kernels import squared_norms
from repro.parallel.executor import ParallelExecutor
from repro.utils.counters import WorkCounter
from repro.utils.rng import draw_tiebreak_jitter, ensure_rng
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "DEFAULT_D_CUT_MAX_FACTOR",
    "ReclusterIndex",
    "resolve_tiebreak_jitter",
]

#: Default profile cap: ``d_cut_max = factor * fitted d_cut``.  Doubling the
#: cutoff roughly quadruples the profile size on 2-D data (entries grow with
#: the d_cut_max-ball volume) while covering every plausible tour move.
DEFAULT_D_CUT_MAX_FACTOR = 2.0

#: Default floor on profile row length: rows with fewer neighbors inside
#: ``d_cut_max`` (sparse-region points) are augmented to their
#: ``min_profile_size`` nearest neighbors at build time.  Without the floor,
#: exactly those rows dominate the repair cost -- a sparse point's nearest
#: denser neighbor usually lies beyond ``d_cut_max``, forcing the expensive
#: join fallback on every recluster.
DEFAULT_MIN_PROFILE_SIZE = 64

#: Number of leading join-order entries per row scanned by the dense prefix
#: tier of the repair sweep.  Almost every point's first denser neighbor sits
#: among its nearest handful of neighbors, so a small prefix resolves most
#: rows at ``O(n * width)`` cost regardless of how dense the full profiles
#: are; the few unresolved rows fall through to an exact scan of their tails.
_SWEEP_PREFIX_WIDTH = 16

#: Unit roundoff of float32 (the only non-float64 storage dtype).
_F32_EPS = float(np.finfo(np.float32).eps)


def _float32_coverage_sq(dim: int, coord_mag: float, r_sq64):
    """Float64 squared radius provably covered by a float32-decided member set.

    Row membership is decided in *storage* arithmetic (float32 squared
    distance against a float32 threshold ``r_sq64``-rounded); the join order
    is float64.  A pair whose float64 squared distance lies below the
    returned bound is guaranteed to be a member: the worst-case discrepancy
    between the two computations is dominated by the float32 rounding of the
    coordinates themselves (``2 * M * eps`` per coordinate difference, ``M``
    the largest absolute coordinate -- cancellation makes this the dominant
    term) plus the arithmetic rounding of the ``dim``-term square-sum.  The
    margin doubles that bound, so the guarantee holds with slack.  Works
    element-wise on an array of thresholds.
    """
    r = np.sqrt(r_sq64)
    margin = 2.0 * (
        2.0 * dim * r * (2.0 * coord_mag * _F32_EPS)
        + (dim + 2.0) * _F32_EPS * r_sq64
    )
    return r_sq64 - margin


def resolve_tiebreak_jitter(model) -> np.ndarray:
    """Return the density tie-break jitter of a fitted model, verifying it.

    Fresh fits stash the jitter on the estimator; models restored from
    pre-profile snapshots regenerate it from the integer seed (the jitter is
    the first draw of the fit's generator, see
    :func:`repro.utils.rng.draw_tiebreak_jitter`).  Either way the jitter is
    verified against the fitted densities -- ``rho_raw_ + jitter`` must equal
    ``rho_`` bit for bit -- because a wrong jitter would silently break the
    bit-identity contract of every later recluster.
    """
    result = model.check_is_fitted()
    jitter = getattr(model, "_tiebreak_jitter_", None)
    if jitter is None:
        seed = getattr(model, "seed", None)
        if seed is None or isinstance(seed, np.random.Generator):
            raise ValueError(
                "cannot recover the density tie-break jitter: the model was "
                "fitted without an integer seed and the fit did not record "
                "the jitter (old snapshot?); refit with an integer seed"
            )
        jitter = draw_tiebreak_jitter(result.rho_.shape, ensure_rng(seed))
    jitter = np.asarray(jitter, dtype=np.float64)
    rho_raw = np.asarray(result.rho_raw_, dtype=np.float64)
    if not np.array_equal(rho_raw + jitter, np.asarray(result.rho_)):
        raise ValueError(
            "density tie-break jitter does not reproduce the fitted rho_ "
            "(rho_raw_ + jitter != rho_); the snapshot's seed or arrays are "
            "inconsistent -- refit before building a recluster index"
        )
    model._tiebreak_jitter_ = jitter
    return jitter


def _csr_count_less(values: np.ndarray, indptr: np.ndarray, bound) -> np.ndarray:
    """Per-row count of entries ``< bound`` in a row-sorted CSR value array.

    A vectorised lower-bound binary search: every row advances one bisection
    step per pass, so the loop runs ``O(log max_row_length)`` times over
    plain ``O(n)`` array ops.  Comparisons happen in the values' own dtype,
    matching the hit predicate of the fit-time density engines.
    """
    base = indptr[:-1].astype(np.int64)
    lo = base.copy()
    hi = indptr[1:].astype(np.int64)
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) >> 1
        probe = values[np.where(active, mid, 0)]
        go_right = active & (probe < bound)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
    return (lo - base).astype(np.int64)


def _pair_distances_sq64(
    points: np.ndarray, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Float64 squared distances of explicit point pairs.

    Same canonical sequential accumulation as the dependency join's kernels
    (:func:`repro.utils.distance.point_to_points_sq` and the blocked leaf
    kernels), so the values -- and the deltas derived from them -- are
    bit-identical to the join's arithmetic.
    """
    diff = points[rows] - points[cols]
    return squared_norms(diff)


class ReclusterIndex:
    """Re-cluster a fitted Ex-DPC model at any parameters, exactly.

    Build one with :meth:`from_estimator` (or through the estimator's
    ``recluster_index()`` / ``recluster()`` convenience methods; snapshot
    restore rebuilds persisted indexes through :meth:`from_arrays`), then
    call :meth:`recluster` freely -- the index is read-only and one instance
    serves any number of parameter choices.

    Internal layout (all rows share ``indptr``):

    * ``values``: squared neighbor distances per row, ascending, in the
      kd-tree's storage dtype -- the density side.  A row holds every point
      strictly within ``d_cut_max`` of its owner; rows that would hold fewer
      than ``min_profile_size`` entries are augmented to the owner's
      ``min_profile_size`` nearest neighbors instead (a superset -- density
      bisection is unaffected, repair coverage grows).
    * ``join_ids``: the same neighbors per row, ordered by the dependency
      join's float64 lexicographic ``(squared distance, index)`` -- the
      repair side.  On float64 trees both orders coincide; float32 trees
      genuinely need both, because float32 rounding can locally reorder
      near-tied distances relative to the join's float64 ordering.
    * ``coverage_sq``: per-row float64 squared radius within which the row is
      *provably* complete (cap or k-NN radius, shrunk by the float32
      representation margin on float32 trees).  A repaired dependent pair is
      trusted only below its row's coverage; at or beyond it, the row falls
      back to the real join.
    """

    def __init__(
        self,
        model,
        *,
        d_cut_max: float,
        values: np.ndarray,
        join_ids: np.ndarray,
        indptr: np.ndarray,
        coverage_sq: np.ndarray,
        jitter: np.ndarray,
    ):
        result = model.check_is_fitted()
        if result.dependent_raw_ is None:
            raise ValueError(
                "the fitted result lacks dependent_raw_ (unmasked dependency "
                "forest); refit to build a recluster index"
            )
        tree = model._predict_tree()
        if tree is None:
            raise ValueError("the model has no fitted kd-tree to recluster over")
        self._model = model
        self._tree = tree
        self._points = np.asarray(model._fit_points_, dtype=np.float64)
        self.d_cut_max = float(check_positive(float(d_cut_max), "d_cut_max"))
        self.d_cut_fit = float(model.d_cut)
        self._values = values
        self._join_ids = np.asarray(join_ids, dtype=np.intp)
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._coverage_sq = np.asarray(coverage_sq, dtype=np.float64)
        self._jitter = np.asarray(jitter, dtype=np.float64)
        self._rho_fit = np.asarray(result.rho_, dtype=np.float64)
        self._delta_fit = np.asarray(result.delta_, dtype=np.float64)
        self._dependent_fit = np.asarray(result.dependent_raw_, dtype=np.intp)
        n = self._points.shape[0]
        for name, array, length in (
            ("values", np.asarray(values), None),
            ("join_ids", self._join_ids, None),
            ("indptr", self._indptr, n + 1),
            ("coverage_sq", self._coverage_sq, n),
            ("jitter", self._jitter, n),
        ):
            if array.ndim != 1 or (length is not None and array.shape[0] != length):
                raise ValueError(f"recluster index array {name!r} has the wrong shape")
        if self._values.shape[0] != self._join_ids.shape[0]:
            raise ValueError("recluster index values/join_ids length mismatch")
        self._lengths = np.diff(self._indptr)
        # Tiered sweep prefix: the first _SWEEP_PREFIX_WIDTH join-order
        # entries of every row as a dense matrix (short rows repeat their
        # last entry, which cannot introduce a spurious *first* denser hit).
        # Scanning this O(n * width) block resolves the overwhelming
        # majority of rows; only the leftovers walk their full CSR tails,
        # which makes the per-parameter sweep cost nearly independent of
        # the profile density (and hence of ``d_cut_max``).
        width = _SWEEP_PREFIX_WIDTH
        cols = np.minimum(
            np.arange(width, dtype=np.int64)[None, :],
            np.maximum(self._lengths, 1)[:, None] - 1,
        )
        self._prefix_ids = self._join_ids[self._indptr[:-1, None] + cols]
        self._prefix_covers = self._lengths <= width
        counter = getattr(model, "_counter", None)
        self._counter = counter if counter is not None else WorkCounter()

    # ------------------------------------------------------------ construction

    @classmethod
    def from_estimator(
        cls,
        model,
        *,
        d_cut_max: float | None = None,
        min_profile_size: int = DEFAULT_MIN_PROFILE_SIZE,
    ) -> "ReclusterIndex":
        """Extract the index from a fitted estimator (one-time cost).

        ``d_cut_max`` caps the profiles and therefore the largest ``d_cut``
        the index can serve; it defaults to
        ``DEFAULT_D_CUT_MAX_FACTOR * fitted d_cut`` and must cover the fitted
        ``d_cut`` itself.  ``min_profile_size`` floors the row length for
        sparse-region points (see :data:`DEFAULT_MIN_PROFILE_SIZE`); ``0``
        disables the augmentation.
        """
        if not getattr(model, "supports_recluster", False):
            raise ValueError(
                f"{type(model).__name__} does not support re-clustering: only "
                "exact algorithms whose density/dependency definitions are "
                "pure functions of (points, d_cut, seed) can replay a cold "
                "fit from persisted profiles (use ExDPC, or refit)"
            )
        model.check_is_fitted()
        tree = model._predict_tree()
        if tree is None:
            raise ValueError("the model has no fitted kd-tree to profile")
        if d_cut_max is None:
            d_cut_max = DEFAULT_D_CUT_MAX_FACTOR * float(model.d_cut)
        d_cut_max = check_positive(float(d_cut_max), "d_cut_max")
        if d_cut_max < float(model.d_cut):
            raise ValueError(
                f"d_cut_max ({d_cut_max}) must cover the fitted d_cut "
                f"({model.d_cut}); profiles capped below the fitted cutoff "
                "cannot reproduce the fitted clustering"
            )
        if int(min_profile_size) < 0:
            raise ValueError(
                f"min_profile_size must be non-negative, got {min_profile_size}"
            )
        jitter = resolve_tiebreak_jitter(model)

        points = np.asarray(model._fit_points_, dtype=np.float64)
        n = points.shape[0]
        executor = ParallelExecutor(model.n_jobs, backend=model.backend)
        try:
            chunks = executor.map_index_chunks(
                lambda chunk: tree.range_profile_batch(
                    points[chunk], d_cut_max, strict=True
                ),
                n,
            )
            values = np.concatenate([c[0] for c in chunks])
            ids = np.concatenate([c[1] for c in chunks])
            lengths = np.concatenate([np.diff(c[2]) for c in chunks])
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(lengths, out=indptr[1:])

            storage64 = values.dtype == np.float64
            dim = points.shape[1]
            coord_mag = float(np.abs(points).max()) if points.size else 0.0
            bound64 = float(np.float64(d_cut_max) * np.float64(d_cut_max))
            base_cov = (
                bound64
                if storage64
                else float(_float32_coverage_sq(dim, coord_mag, bound64))
            )
            coverage_sq = np.full(n, base_cov, dtype=np.float64)

            # ---- sparse-row augmentation: rows with fewer than k in-cap
            # neighbors are replaced by the owner's k nearest neighbors.  The
            # k-NN set is a superset of the cap ball (fewer than k points lie
            # strictly inside the cap, and every in-cap point beats every
            # out-of-cap point in the storage distance order the search
            # uses), so density bisection still sees every in-cap entry with
            # identical bits, while the row's proven coverage grows to its
            # k-th neighbor radius.
            k = min(int(min_profile_size), n)
            short = (
                np.flatnonzero(lengths < k) if k > 0 else np.empty(0, dtype=np.intp)
            )
            if short.size:
                knn_chunks = executor.map_index_chunks(
                    lambda chunk: tree.knn_batch(points[short[chunk]], k)[0],
                    short.size,
                )
                knn_ids = np.concatenate(knn_chunks, axis=0)
                # Recompute squared distances with the storage-dtype kernel
                # arithmetic so the merged values are bit-compatible with the
                # range-extracted rows.
                storage_pts = points.astype(values.dtype, copy=False)
                diff = storage_pts[short][:, None, :] - storage_pts[knn_ids]
                vals_aug = squared_norms(diff)
                order = np.lexsort((knn_ids, vals_aug), axis=-1)
                vals_aug = np.take_along_axis(vals_aug, order, axis=-1)
                ids_aug = np.take_along_axis(knn_ids, order, axis=-1)
                kth_sq64 = vals_aug[:, -1].astype(np.float64)
                knn_cov = (
                    kth_sq64
                    if storage64
                    else _float32_coverage_sq(dim, coord_mag, kth_sq64)
                )
                # The cap-based bound stays valid for the superset rows, so
                # coverage can only grow.
                coverage_sq[short] = np.maximum(base_cov, knn_cov)

                old_row_of = np.repeat(np.arange(n, dtype=np.intp), lengths)
                is_short = np.zeros(n, dtype=bool)
                is_short[short] = True
                keep = ~is_short[old_row_of]
                within_old = np.arange(indptr[-1], dtype=np.int64) - np.repeat(
                    indptr[:-1], lengths
                )
                new_lengths = lengths.astype(np.int64, copy=True)
                new_lengths[short] = k
                new_indptr = np.zeros(n + 1, dtype=np.int64)
                np.cumsum(new_lengths, out=new_indptr[1:])
                new_values = np.empty(new_indptr[-1], dtype=values.dtype)
                new_ids = np.empty(new_indptr[-1], dtype=np.intp)
                dest_keep = new_indptr[old_row_of[keep]] + within_old[keep]
                new_values[dest_keep] = values[keep]
                new_ids[dest_keep] = ids[keep]
                dest_short = (
                    new_indptr[short][:, None] + np.arange(k, dtype=np.int64)[None, :]
                ).ravel()
                new_values[dest_short] = vals_aug.ravel()
                new_ids[dest_short] = ids_aug.ravel()
                values, ids, lengths, indptr = (
                    new_values,
                    new_ids,
                    new_lengths,
                    new_indptr,
                )
        finally:
            executor.close()

        if storage64:
            # Storage order and the join's float64 lexicographic order are the
            # same ordering on float64 trees (identical arithmetic).
            join_ids = ids
        else:
            row_of = np.repeat(np.arange(n, dtype=np.intp), lengths)
            d_sq64 = _pair_distances_sq64(points, row_of, ids)
            order = np.lexsort((ids, d_sq64, row_of))
            join_ids = ids[order]

        return cls(
            model,
            d_cut_max=d_cut_max,
            values=values,
            join_ids=join_ids,
            indptr=indptr,
            coverage_sq=coverage_sq,
            jitter=jitter,
        )

    @classmethod
    def from_arrays(
        cls,
        model,
        *,
        d_cut_max: float,
        values: np.ndarray,
        join_ids: np.ndarray,
        indptr: np.ndarray,
        coverage_sq: np.ndarray,
    ) -> "ReclusterIndex":
        """Re-attach a persisted index (snapshot restore path).

        The arrays must come from :meth:`from_estimator` on the same fitted
        model (format v4 snapshots store them verbatim); they may be
        read-only memory maps -- the index never writes to them.
        """
        return cls(
            model,
            d_cut_max=float(d_cut_max),
            values=values,
            join_ids=join_ids,
            indptr=indptr,
            coverage_sq=coverage_sq,
            jitter=resolve_tiebreak_jitter(model),
        )

    # ----------------------------------------------------------------- queries

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return int(self._indptr.shape[0] - 1)

    @property
    def n_profile_entries(self) -> int:
        """Total number of (point, neighbor) profile entries."""
        return int(self._values.shape[0])

    def memory_bytes(self) -> int:
        """Approximate footprint of the profile arrays."""
        return int(
            self._values.nbytes
            + self._join_ids.nbytes
            + self._indptr.nbytes
            + self._coverage_sq.nbytes
            + self._jitter.nbytes
            + self._prefix_ids.nbytes
        )

    def _radius_sq_bound(self, d_cut: float):
        """The storage-dtype squared-radius bound of the density engines.

        Replicates :meth:`repro.index.kdtree.KDTree._check_radius_sq_batch`:
        square in float64 first, then round once to the storage dtype, so the
        profile search counts exactly the pairs the fit-time engines count.
        """
        bound = np.float64(d_cut) * np.float64(d_cut)
        if self._values.dtype != np.float64:
            bound = self._values.dtype.type(bound)
        return bound

    def density(self, d_cut: float) -> np.ndarray:
        """Integer local density of every point at ``d_cut`` (Definition 1).

        Bit-identical to the fit-time density engines for any
        ``d_cut <= d_cut_max``; one vectorised binary search per point.
        """
        d_cut = check_positive(float(d_cut), "d_cut")
        if d_cut > self.d_cut_max:
            raise ValueError(
                f"d_cut ({d_cut}) exceeds the profiled d_cut_max "
                f"({self.d_cut_max}); rebuild the index with a larger "
                "d_cut_max (recluster_index(d_cut_max=..., rebuild=True))"
            )
        return _csr_count_less(self._values, self._indptr, self._radius_sq_bound(d_cut))

    def _repair_forest(
        self, rho: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """Exact dependency forest at the new tie-broken densities ``rho``.

        Resolves every point's nearest denser neighbor from its profile row
        (first entry in join order that is denser; see the module docstring
        for why that is the global lexicographic minimum), keeps the fitted
        ``delta`` verbatim where the dependent did not change, and falls back
        to :func:`nearest_denser_join` for the points the profiles cannot
        decide.  Returns ``(dependent, delta, n_changed, n_joined)``.
        """
        model = self._model
        indptr = self._indptr
        join_ids = self._join_ids
        total = join_ids.shape[0]
        width = self._prefix_ids.shape[1]

        # Tier 1 -- dense prefix: first denser entry among each row's leading
        # ``width`` join-order entries (repeated trailing entries of short
        # rows can never create a spurious *first* hit).
        denser_p = rho[self._prefix_ids] > rho[:, None]
        found_p = denser_p.any(axis=1)
        rows = np.flatnonzero(found_p)
        fid = self._prefix_ids[rows, np.argmax(denser_p[rows], axis=1)]

        rest = np.flatnonzero(~found_p)
        covered = self._prefix_covers[rest]
        # Prefix covered the whole row and found nothing denser: the profile
        # cannot decide this row, it goes to the join fallback.
        join_rows = rest[covered]

        # Tier 2 -- CSR tails of the unresolved rows that extend past the
        # prefix.  Join order is preserved, so the first denser tail entry is
        # the row's global first.  reduceat never sees an empty segment:
        # every tail row has length > width by construction.
        tail_rows = rest[~covered]
        if tail_rows.size:
            tail_len = self._lengths[tail_rows] - width
            m = int(tail_len.sum())
            seg_end = np.cumsum(tail_len)
            within = np.arange(m, dtype=np.int64) - np.repeat(
                seg_end - tail_len, tail_len
            )
            pos = np.repeat(indptr[tail_rows] + width, tail_len) + within
            denser_t = rho[join_ids[pos]] > np.repeat(rho[tail_rows], tail_len)
            pos_or_total = np.where(denser_t, pos, total)
            first_t = np.minimum.reduceat(
                pos_or_total, seg_end - tail_len
            )
            found_t = first_t < total
            rows = np.concatenate([rows, tail_rows[found_t]])
            fid = np.concatenate([fid, join_ids[first_t[found_t]]])
            join_rows = np.concatenate([join_rows, tail_rows[~found_t]])

        dependent = np.array(self._dependent_fit, dtype=np.intp, copy=True)
        delta = np.array(self._delta_fit, dtype=np.float64, copy=True)
        pair_sq64 = _pair_distances_sq64(self._points, rows, fid)
        # A resolved pair at or beyond its row's proven coverage could in
        # principle be beaten by a just-outside point the row missed (k-NN
        # radius ties, or float32 boundary rounding); re-run those rows
        # through the join.  For full-precision in-cap pairs the test always
        # passes.
        safe = pair_sq64 < self._coverage_sq[rows]
        unsafe_rows = rows[~safe]
        rows, fid, pair_sq64 = rows[safe], fid[safe], pair_sq64[safe]
        if unsafe_rows.size:
            join_rows = np.concatenate([join_rows, unsafe_rows])
        join_rows = np.sort(join_rows)

        changed = fid != dependent[rows]
        changed_rows = rows[changed]
        dependent[changed_rows] = fid[changed]
        # The join keeps squared distances through the lexicographic
        # comparison and takes one final sqrt; replaying sqrt on the same
        # float64 squared distance reproduces its delta bit for bit.
        delta[changed_rows] = np.sqrt(pair_sq64[changed])
        n_changed = int(changed_rows.size)
        n_joined = int(join_rows.size)

        if n_joined:
            dep_j, delta_j = self._resolve_fallback(join_rows, rho)
            dependent[join_rows] = dep_j
            delta[join_rows] = delta_j

        return dependent, delta, n_changed, n_joined

    #: Total candidate-pair budget of the brute-force fallback resolver per
    #: recluster call.  Fallback rows are local density maxima whose strictly
    #: denser candidates are spatially scattered, which defeats the dual
    #: traversal's per-node density pruning; a direct scan of each row's
    #: denser set is both exact and, for realistic parameter shifts, orders
    #: of magnitude smaller than a tree search.  Rows whose denser sets
    #: overflow the budget (pathologically small ``d_cut``) fall back to the
    #: seeded dual-tree join.
    _FALLBACK_BRUTE_BUDGET = 32_000_000

    #: Fallback rows scanned per brute-force block (padded to the largest
    #: denser set in the block; sorting rows by denser-set size first keeps
    #: the padding waste small).
    _FALLBACK_BRUTE_BLOCK = 32

    def _resolve_fallback(
        self, join_rows: np.ndarray, rho: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact nearest strictly-denser neighbor of the fallback rows.

        Splits the rows between the brute-force denser-set scan (cheap rows
        first, until :data:`_FALLBACK_BRUTE_BUDGET` candidate pairs are
        spent) and the seeded dual-tree join (whatever overflows).  Both
        paths use the canonical float64 pair kernel and the lexicographic
        ``(squared distance, index)`` tie-break, so the combined answer is
        bit-identical to a cold fit's dependency phase.
        """
        model = self._model
        n = rho.shape[0]
        dep_out = np.full(join_rows.shape[0], -1, dtype=np.intp)
        delta_out = np.full(join_rows.shape[0], np.inf)

        # Strictly-denser candidate prefix: after a descending stable sort,
        # the first k entries are exactly the points strictly denser than a
        # row with k = n - searchsorted(ascending, rho_row, side="right")
        # (correct even under exact density ties).
        order = np.argsort(-rho, kind="stable")
        asc = rho[order[::-1]]
        k = (n - np.searchsorted(asc, rho[join_rows], side="right")).astype(
            np.int64
        )

        by_k = np.argsort(k, kind="stable")
        cum = np.cumsum(k[by_k])
        n_brute = int(np.searchsorted(cum, self._FALLBACK_BRUTE_BUDGET, side="right"))
        brute_sel = by_k[:n_brute]
        rows_b, k_b = join_rows[brute_sel], k[brute_sel]
        intp_max = np.iinfo(np.intp).max
        block = self._FALLBACK_BRUTE_BLOCK
        for lo in range(0, rows_b.shape[0], block):
            hi = min(lo + block, rows_b.shape[0])
            kmax = int(k_b[hi - 1])
            if kmax == 0:
                continue
            cand = order[:kmax]
            d_sq = _block_pair_distances_sq(
                self._points[rows_b[lo:hi]][None], self._points[cand][None]
            )[0]
            self._counter.add("distance_calcs", float(hi - lo) * float(kmax))
            d_sq[np.arange(kmax)[None, :] >= k_b[lo:hi, None]] = np.inf
            best_sq = d_sq.min(axis=1)
            has = np.isfinite(best_sq)
            if not has.any():
                continue
            best_id = np.where(
                d_sq == best_sq[:, None], cand[None, :], intp_max
            ).min(axis=1)
            dest = brute_sel[lo:hi][has]
            dep_out[dest] = best_id[has]
            delta_out[dest] = np.sqrt(best_sq[has])

        overflow_sel = by_k[n_brute:]
        if overflow_sel.size:
            overflow_rows = join_rows[np.sort(overflow_sel)]
            seed_idx, seed_sq = self._join_seeds(overflow_rows, rho)
            executor = ParallelExecutor(model.n_jobs, backend=model.backend)
            try:
                # The dual engine serves the overflow regardless of the
                # model's fit engine: every join engine is bit-identical per
                # query, and only the dual traversal can exploit the seeded
                # bounds.
                outcome = nearest_denser_join(
                    self._points,
                    rho,
                    engine="dual",
                    executor=executor,
                    counter=self._counter,
                    query_indices=overflow_rows,
                    tree=self._tree,
                    leaf_size=getattr(model, "leaf_size", 32),
                    frontier_target=getattr(model, "dual_frontier", None),
                    seed_dependent=seed_idx,
                    seed_delta_sq=seed_sq,
                )
            finally:
                executor.close()
            dest = np.sort(overflow_sel)
            dep_out[dest] = outcome.dependent
            delta_out[dest] = outcome.delta

        return dep_out, delta_out

    _SEED_CLIMB_LIMIT = 64

    def _join_seeds(
        self, join_rows: np.ndarray, rho: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Denser-candidate seeds for the join fallback rows.

        Climbs the *fitted* dependency forest from each row's old dependent
        until it reaches a point that is still denser under the new
        densities (the fitted forest ascends the old density order, so a
        few hops almost always suffice; the climb is capped and unresolved
        rows are simply left unseeded).  The seed distances use the same
        float64 pair kernel as the join, so a seed that survives as the
        final answer reports a bit-identical delta.
        """
        cur = self._dependent_fit[join_rows]
        rho_rows = rho[join_rows]
        for _ in range(self._SEED_CLIMB_LIMIT):
            alive = cur >= 0
            stale = alive.copy()
            stale[alive] = rho[cur[alive]] <= rho_rows[alive]
            if not stale.any():
                break
            cur[stale] = self._dependent_fit[cur[stale]]
        valid = cur >= 0
        valid[valid] = rho[cur[valid]] > rho_rows[valid]
        seed_idx = np.full(join_rows.shape[0], -1, dtype=np.intp)
        seed_sq = np.full(join_rows.shape[0], np.inf)
        seed_idx[valid] = cur[valid]
        seed_sq[valid] = _pair_distances_sq64(
            self._points, join_rows[valid], cur[valid]
        )
        return seed_idx, seed_sq

    def recluster(
        self,
        d_cut: float | None = None,
        *,
        rho_min: float | None = None,
        delta_min: float | None = None,
        n_clusters: int | None = None,
    ) -> DPCResult:
        """Cluster the fitted points at new parameters, bit-identical to ``fit``.

        Exactly one of ``delta_min`` / ``n_clusters`` selects the centers
        (same contract as the estimator constructors, including the
        ``delta_min > d_cut`` requirement of Definition 5); ``d_cut=None``
        keeps the fitted cutoff.  Returns a fresh :class:`DPCResult` whose
        per-point arrays equal a cold ``fit`` at the same parameters bit for
        bit; the index and the fitted model are left untouched.
        """
        model = self._model
        d_cut = self.d_cut_fit if d_cut is None else check_positive(float(d_cut), "d_cut")
        if rho_min is not None:
            rho_min = check_non_negative(rho_min, "rho_min")
        if delta_min is not None and n_clusters is not None:
            raise ValueError("delta_min and n_clusters are mutually exclusive")
        if delta_min is None and n_clusters is None:
            raise ValueError(
                "specify either delta_min (threshold on dependent distance) or "
                "n_clusters (number of centers to select)"
            )
        if delta_min is not None:
            delta_min = check_positive(delta_min, "delta_min")
            if delta_min <= d_cut:
                raise ValueError(
                    f"delta_min ({delta_min}) must exceed d_cut ({d_cut}); "
                    "see Definition 5 of the paper"
                )
        if n_clusters is not None and int(n_clusters) <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")

        timings: dict[str, float] = {}
        work: dict[str, float] = {}
        start_total = time.perf_counter()

        start = time.perf_counter()
        counts = self.density(d_cut)
        rho_raw = counts.astype(np.float64)
        rho = rho_raw + self._jitter
        timings["local_density"] = time.perf_counter() - start

        start = time.perf_counter()
        if np.array_equal(rho, self._rho_fit):
            # Same tie-broken densities => the fitted forest is exact as-is.
            dependent = np.array(self._dependent_fit, dtype=np.intp, copy=True)
            delta = np.array(self._delta_fit, dtype=np.float64, copy=True)
            n_changed = n_joined = 0
        else:
            dependent, delta, n_changed, n_joined = self._repair_forest(rho)
        timings["dependency"] = time.perf_counter() - start
        work["repaired_dependencies"] = float(n_changed)
        work["joined_dependencies"] = float(n_joined)
        work["profile_entries"] = float(self.n_profile_entries)

        start = time.perf_counter()
        labels, centers, noise_mask = assign_clusters(
            rho,
            rho_raw,
            delta,
            dependent,
            rho_min=rho_min,
            delta_min=delta_min,
            n_clusters=n_clusters,
        )
        timings["assignment"] = time.perf_counter() - start
        timings["total"] = time.perf_counter() - start_total

        dependent_raw = dependent.copy()
        dependent[centers] = -1  # a center's dependent point is itself (§2.1)

        params: dict[str, Any] = dict(model.get_params())
        params.update(
            {
                "d_cut": d_cut,
                "rho_min": rho_min,
                "delta_min": delta_min,
                "n_clusters": n_clusters,
                "recluster": True,
            }
        )
        return DPCResult(
            labels_=labels,
            rho_=rho,
            rho_raw_=canonical_rho_raw(rho_raw),
            delta_=delta,
            dependent_=dependent,
            centers_=np.asarray(centers, dtype=np.intp),
            noise_mask_=np.asarray(noise_mask, dtype=bool),
            n_clusters_=int(len(centers)),
            exact_dependency_mask_=np.ones(rho.shape[0], dtype=bool),
            timings_=timings,
            work_=work,
            memory_bytes_=self.memory_bytes(),
            params_=params,
            algorithm_=model.algorithm_name,
            dependent_raw_=dependent_raw,
        )
