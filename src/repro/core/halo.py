"""Cluster halo (border point) analysis.

The original density-peaks paper (Rodriguez & Laio, Science 2014) refines each
cluster with a *halo*: for every cluster, a border density is computed as the
highest density found among points that are within ``d_cut`` of a point from a
different cluster; members whose density falls below that border density are
demoted to the cluster halo (likely noise / boundary points).

The SIGMOD paper this repository reproduces drops the halo step (it uses the
simpler ``rho_min`` noise rule of Definition 4) but its §6.1 discussion of
border points -- the only place where Approx-DPC and S-Approx-DPC deviate from
Ex-DPC -- is exactly about these halo points.  This module provides the halo
computation as an optional post-processing step so that users can quantify and
filter those border regions.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import DPCResult
from repro.index.kdtree import KDTree
from repro.utils.validation import check_points, check_positive

__all__ = ["compute_halo", "apply_halo"]


def compute_halo(points, result: DPCResult, d_cut: float, leaf_size: int = 32) -> np.ndarray:
    """Return the boolean halo mask of a clustering.

    A point belongs to the halo of its cluster when its local density is below
    the cluster's border density (the maximum average density over pairs of
    points from different clusters that lie within ``d_cut`` of each other, as
    in Rodriguez & Laio).  Noise points are never part of a halo (they are
    already excluded from every cluster).

    Parameters
    ----------
    points:
        The clustered point matrix.
    result:
        The :class:`~repro.core.result.DPCResult` whose labels and densities
        are analysed.
    d_cut:
        The cutoff distance used for the clustering.
    leaf_size:
        kd-tree leaf size for the neighbourhood queries.
    """
    points = check_points(points, name="points")
    d_cut = check_positive(d_cut, "d_cut")
    if points.shape[0] != result.n_points:
        raise ValueError("points and result describe different numbers of points")

    labels = result.labels_
    rho = np.asarray(result.rho_raw_, dtype=np.float64)
    tree = KDTree(points, leaf_size=leaf_size)

    border_density = np.zeros(max(result.n_clusters_, 1), dtype=np.float64)
    for index in range(points.shape[0]):
        label = labels[index]
        if label < 0:
            continue
        neighbors = tree.range_search(points[index], d_cut, strict=True)
        foreign = neighbors[(labels[neighbors] >= 0) & (labels[neighbors] != label)]
        if foreign.size == 0:
            continue
        # Average density of the cross-cluster pair, as in the original paper.
        pair_density = float((rho[index] + rho[foreign].max()) / 2.0)
        if pair_density > border_density[label]:
            border_density[label] = pair_density

    halo = np.zeros(points.shape[0], dtype=bool)
    for label in range(result.n_clusters_):
        members = labels == label
        halo[members] = rho[members] < border_density[label]
    return halo


def apply_halo(result: DPCResult, halo_mask: np.ndarray) -> np.ndarray:
    """Return a copy of ``result.labels_`` with halo points demoted to ``-1``."""
    halo_mask = np.asarray(halo_mask, dtype=bool)
    if halo_mask.shape[0] != result.n_points:
        raise ValueError("halo mask length does not match the result")
    labels = result.labels_.copy()
    labels[halo_mask] = -1
    return labels
