"""The result object returned by every DPC estimator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.parallel.simulate import SimulatedMulticore

__all__ = ["DPCResult", "canonical_rho_raw"]


def canonical_rho_raw(rho_raw: np.ndarray) -> np.ndarray:
    """Normalise raw densities to the dtype convention of ``rho_raw_``.

    Definition 1 densities are integer counts and are stored as ``int64``;
    estimators whose raw densities are genuinely fractional keep ``float64``.
    Shared by ``fit``, snapshot restore and the streaming layer so the three
    paths cannot drift.
    """
    rho_raw = np.asarray(rho_raw)
    if np.allclose(rho_raw, np.round(rho_raw)):
        return rho_raw.astype(np.int64)
    return np.asarray(rho_raw, dtype=np.float64)


@dataclass
class DPCResult:
    """Outcome of one Density-Peaks Clustering run.

    Attributes
    ----------
    labels_:
        Cluster label per point; noise points carry ``-1``.  Labels are dense
        integers ``0 .. n_clusters_ - 1`` ordered by decreasing center density.
    rho_:
        Tie-broken local densities (the integer count plus a random value in
        ``(0, 1)``; see §3 of the paper).
    rho_raw_:
        Integer local densities exactly as in Definition 1.
    delta_:
        Dependent distances; the globally densest point carries ``inf``.
    dependent_:
        Index of each point's (approximate) dependent point; ``-1`` for the
        globally densest point and for cluster centers (whose dependent point
        is defined to be themselves).
    centers_:
        Indices of the selected cluster centers, ordered by decreasing density.
    noise_mask_:
        Boolean mask of noise points (``rho_raw_ < rho_min``).
    n_clusters_:
        Number of clusters (``len(centers_)``).
    exact_dependency_mask_:
        Boolean mask of points whose dependent point was computed *exactly*
        (always all-true for exact algorithms; for Approx-DPC this marks the
        "stem" of each cluster tree).
    timings_:
        Wall-clock seconds per phase: ``index_build``, ``local_density``,
        ``dependency``, ``assignment`` and ``total``.
    work_:
        Hardware-independent operation counts per phase
        (``density_distance_calcs``, ``dependency_distance_calcs``,
        ``total_distance_calcs``).  These reproduce the paper's complexity
        comparison (Table 1) independently of interpreter constant factors;
        see EXPERIMENTS.md.
    memory_bytes_:
        Approximate peak footprint of the algorithm's data structures (index,
        grids, auxiliary arrays), mirroring the paper's Table 7.
    parallel_profile_:
        A :class:`repro.parallel.simulate.SimulatedMulticore` describing each
        phase's scheduling policy and per-task costs; used by the
        thread-scaling benchmarks.
    params_:
        The estimator parameters used for the run.
    algorithm_:
        Name of the algorithm that produced the result.
    dependent_raw_:
        Like ``dependent_`` but *without* the center masking: a center's entry
        holds its actual nearest denser point (or ``-1`` for the globally
        densest point).  The streaming layer needs the unmasked forest to
        repair dependencies incrementally when a center is demoted later.
    """

    labels_: np.ndarray
    rho_: np.ndarray
    rho_raw_: np.ndarray
    delta_: np.ndarray
    dependent_: np.ndarray
    centers_: np.ndarray
    noise_mask_: np.ndarray
    n_clusters_: int
    exact_dependency_mask_: np.ndarray
    timings_: dict[str, float] = field(default_factory=dict)
    work_: dict[str, float] = field(default_factory=dict)
    memory_bytes_: int = 0
    parallel_profile_: SimulatedMulticore = field(default_factory=SimulatedMulticore)
    params_: dict[str, Any] = field(default_factory=dict)
    algorithm_: str = ""
    dependent_raw_: np.ndarray | None = None

    @property
    def n_points(self) -> int:
        """Number of clustered points."""
        return int(self.labels_.shape[0])

    @property
    def n_noise(self) -> int:
        """Number of points classified as noise."""
        return int(np.count_nonzero(self.noise_mask_))

    def cluster_sizes(self) -> dict[int, int]:
        """Return ``{label: size}`` for every cluster (noise excluded)."""
        labels, counts = np.unique(self.labels_[self.labels_ >= 0], return_counts=True)
        return {int(label): int(count) for label, count in zip(labels, counts)}

    def cluster_members(self, label: int) -> np.ndarray:
        """Return the indices of the points assigned to cluster ``label``."""
        return np.flatnonzero(self.labels_ == label)

    def decision_graph(self):
        """Return the :class:`~repro.core.decision_graph.DecisionGraph` of this run."""
        from repro.core.decision_graph import DecisionGraph

        return DecisionGraph(rho=self.rho_raw_, delta=self.delta_)

    def summary(self) -> str:
        """Return a short human-readable summary of the clustering."""
        sizes = self.cluster_sizes()
        lines = [
            f"algorithm        : {self.algorithm_}",
            f"points           : {self.n_points}",
            f"clusters         : {self.n_clusters_}",
            f"noise points     : {self.n_noise}",
            f"total time [s]   : {self.timings_.get('total', float('nan')):.4f}",
            f"density time [s] : {self.timings_.get('local_density', float('nan')):.4f}",
            f"depend. time [s] : {self.timings_.get('dependency', float('nan')):.4f}",
            f"memory [MB]      : {self.memory_bytes_ / 1e6:.2f}",
        ]
        if sizes:
            largest = max(sizes.values())
            smallest = min(sizes.values())
            lines.append(f"cluster sizes    : min={smallest}, max={largest}")
        return "\n".join(lines)
