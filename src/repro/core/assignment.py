"""Noise / cluster-center selection and label propagation.

These steps are common to every algorithm in the paper (§2.2, step 4):

1. points with ``rho_raw < rho_min`` are noise (Definition 4);
2. non-noise points with ``delta >= delta_min`` are cluster centers
   (Definition 5) -- or, alternatively, the ``k`` best points by the
   ``gamma = rho * delta`` heuristic are chosen when the caller asks for a
   fixed number of clusters;
3. every remaining point receives the label of its dependent point, i.e.
   labels propagate down the dependency forest rooted at the centers
   (Definition 6).  The propagation is ``O(n)``.

The propagation is implemented with vectorised pointer doubling (no
recursion, no per-point Python loop), so adversarial dependency chains cost
``O(n log n)`` array operations at worst, and it tolerates the approximate
dependency forests produced by Approx-DPC / S-Approx-DPC -- including
pathological cycles, which resolve to noise.
"""

from __future__ import annotations

import numpy as np

__all__ = ["select_noise", "select_centers", "propagate_labels", "assign_clusters"]

NOISE_LABEL = -1
_UNASSIGNED = -2


def select_noise(rho_raw: np.ndarray, rho_min: float | None) -> np.ndarray:
    """Return the boolean noise mask ``rho_raw < rho_min`` (all-false if ``None``)."""
    rho_raw = np.asarray(rho_raw)
    if rho_min is None:
        return np.zeros(rho_raw.shape[0], dtype=bool)
    return rho_raw < float(rho_min)


def select_centers(
    rho: np.ndarray,
    delta: np.ndarray,
    noise_mask: np.ndarray,
    *,
    delta_min: float | None = None,
    n_clusters: int | None = None,
) -> np.ndarray:
    """Select cluster centers.

    Exactly one of ``delta_min`` (threshold mode, Definition 5) or
    ``n_clusters`` (top-k by ``gamma = rho * delta``) must be provided.
    Centers are returned ordered by decreasing local density, which fixes the
    label numbering.
    """
    rho = np.asarray(rho, dtype=np.float64)
    delta = np.asarray(delta, dtype=np.float64)
    noise_mask = np.asarray(noise_mask, dtype=bool)
    if (delta_min is None) == (n_clusters is None):
        raise ValueError("provide exactly one of delta_min or n_clusters")

    if delta_min is not None:
        eligible = (~noise_mask) & (delta >= float(delta_min))
        centers = np.flatnonzero(eligible)
    else:
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        finite_delta = delta.copy()
        finite = finite_delta[np.isfinite(finite_delta)]
        ceiling = float(finite.max()) if finite.size else 1.0
        finite_delta[~np.isfinite(finite_delta)] = ceiling
        gamma = np.where(noise_mask, -np.inf, rho * finite_delta)
        eligible_count = int(np.count_nonzero(np.isfinite(gamma) & (gamma > -np.inf)))
        if n_clusters > eligible_count:
            raise ValueError(
                f"cannot select {n_clusters} centers from {eligible_count} "
                "non-noise points"
            )
        order = np.argsort(gamma, kind="stable")[::-1]
        centers = order[:n_clusters]

    if centers.size == 0:
        raise ValueError(
            "no cluster centers selected; lower delta_min or rho_min "
            "(or pass n_clusters)"
        )
    # Order by decreasing density so that label 0 is the densest center.
    centers = centers[np.argsort(rho[centers], kind="stable")[::-1]]
    return centers.astype(np.intp)


def propagate_labels(
    dependent: np.ndarray,
    centers: np.ndarray,
    noise_mask: np.ndarray,
) -> np.ndarray:
    """Propagate cluster labels down the dependency forest.

    Parameters
    ----------
    dependent:
        ``dependent[i]`` is the index of point ``i``'s dependent point, or
        ``-1`` when it has none (the globally densest point).
    centers:
        Indices of the cluster centers; ``centers[k]`` seeds label ``k``.
    noise_mask:
        Boolean noise mask.  Noise points end up with label ``-1`` but still
        forward labels through themselves, so a chain passing through a noise
        point keeps its root's label (the paper removes noise *after* the
        dependency forest is formed).

    Returns
    -------
    numpy.ndarray
        Integer labels; ``-1`` marks noise and any point whose chain ends at a
        non-center root (which can only happen if the caller selected fewer
        centers than the forest has roots).
    """
    dependent = np.asarray(dependent, dtype=np.intp)
    noise_mask = np.asarray(noise_mask, dtype=bool)
    n = dependent.shape[0]
    centers = np.asarray(centers, dtype=np.intp)

    # Vectorised pointer doubling: make roots and centers absorbing
    # self-loops, then square the parent map until it reaches its fixpoint --
    # every point's pointer lands on the absorbing root of its chain after at
    # most ceil(log2(n)) rounds.  Chains trapped in a cycle that contains no
    # center (impossible with exact dependencies, but approximate forests
    # could in principle produce one under pathological density ties) never
    # reach a self-loop; their pointers keep rotating inside the cycle, whose
    # members carry no center label, so they resolve to noise exactly like
    # the non-center roots.
    parent = dependent.copy()
    own = np.arange(n, dtype=np.intp)
    terminal = (parent < 0) | (parent == own)
    parent[terminal] = own[terminal]
    parent[centers] = centers
    rounds = max(1, int(np.ceil(np.log2(n)))) + 1 if n > 1 else 1
    for _ in range(rounds):
        hop = parent[parent]
        if np.array_equal(hop, parent):
            break
        parent = hop

    root_label = np.full(n, NOISE_LABEL, dtype=np.int64)
    root_label[centers] = np.arange(centers.shape[0], dtype=np.int64)
    labels = root_label[parent]
    labels[noise_mask] = NOISE_LABEL
    return labels


def assign_clusters(
    rho: np.ndarray,
    rho_raw: np.ndarray,
    delta: np.ndarray,
    dependent: np.ndarray,
    *,
    rho_min: float | None,
    delta_min: float | None,
    n_clusters: int | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run noise selection, center selection and label propagation.

    Returns
    -------
    tuple
        ``(labels, centers, noise_mask)``.
    """
    noise_mask = select_noise(rho_raw, rho_min)
    centers = select_centers(
        rho, delta, noise_mask, delta_min=delta_min, n_clusters=n_clusters
    )
    labels = propagate_labels(dependent, centers, noise_mask)
    return labels, centers, noise_mask
