"""S-Approx-DPC: the sampling-based approximate algorithm of §5.

S-Approx-DPC trades a user-controlled amount of accuracy for speed by turning
point clustering into *cell* clustering.  It overlays the data with a grid
whose cells have side ``epsilon * d_cut / sqrt(d)`` and picks one
representative point per cell:

* **Local density** is computed only for picked points (one kd-tree range
  count each); non-picked points never run a range search.
* **Dependencies.**  A non-picked point takes the picked point of its cell as
  its approximate dependent point.  Picked points run a two-phase procedure:

  - *first phase*: if a neighbouring cell (a member of ``N(c)``) holds a
    denser picked point, take it -- the dependent distance is bounded by
    ``(1 + epsilon) * d_cut``;
  - *second phase*: the remaining picked points become the roots of
    *temporary clusters*.  For each such root the algorithm first finds the
    nearest denser root, then uses the triangle inequality (with each
    temporary cluster's radius) to prune whole clusters that cannot contain a
    closer denser picked point, and scans only the survivors.

  When the number of undecided roots is too large for the quadratic
  root-to-root pass (the paper assumes ``|P'_pick|^2 <= O(n)``), the
  implementation falls back to the same unified nearest-denser join used by
  Approx-DPC (:func:`repro.core.dependency_join.nearest_denser_join`),
  restricted to picked points as the candidate set.

Larger ``epsilon`` means fewer cells, fewer range searches, and a coarser
result (Table 5); ``epsilon -> 0`` degenerates towards Approx-DPC's grid.

With the default ``engine="batch"``, the per-cell range searches and the
partitioned exact fallback are issued as chunked vectorised batch queries
that produce results identical to the scalar per-cell code.
"""

from __future__ import annotations

import numpy as np

from repro.core.dependency_join import nearest_denser_join
from repro.core.framework import DensityPeaksBase
from repro.index.grid import distinct_lattice_keys
from repro.index.kdtree import KDTree, check_storage_dtype
from repro.index.sample_grid import SampledGrid
from repro.parallel.backends import kernel_picked_density, pack_tree_arrays
from repro.utils.counters import WorkCounter
from repro.utils.distance import point_to_points_sq
from repro.utils.validation import check_positive

__all__ = ["SApproxDPC"]


class SApproxDPC(DensityPeaksBase):
    """Sampling-based approximate DPC (§5 of the paper).

    Parameters
    ----------
    d_cut:
        Cutoff distance of Definition 1.
    epsilon:
        Approximation parameter (> 0).  The grid cell side is
        ``epsilon * d_cut / sqrt(d)``; larger values mean faster, coarser
        clustering.
    rho_min, delta_min, n_clusters, n_jobs, seed, record_costs, engine:
        See :class:`repro.core.framework.DensityPeaksBase`.  Note that
        ``rho_min`` only applies to picked points (non-picked points inherit
        their representative's density), mirroring §5.
    leaf_size:
        Leaf bucket size of the kd-tree.
    fallback_factor:
        The second phase switches to the partition-based exact search when
        ``|P'_pick|^2 > fallback_factor * n``.
    """

    algorithm_name = "S-Approx-DPC"

    def __init__(
        self,
        d_cut: float,
        epsilon: float = 0.5,
        *,
        rho_min: float | None = None,
        delta_min: float | None = None,
        n_clusters: int | None = None,
        n_jobs: int = 1,
        backend: str | None = None,
        seed: int | None = 0,
        record_costs: bool = True,
        leaf_size: int = 32,
        fallback_factor: float = 4.0,
        engine: str | None = None,
        dtype: str = "float64",
        dual_frontier=None,
        kernel: str | None = None,
    ):
        super().__init__(
            d_cut,
            rho_min=rho_min,
            delta_min=delta_min,
            n_clusters=n_clusters,
            n_jobs=n_jobs,
            backend=backend,
            seed=seed,
            record_costs=record_costs,
            engine=engine,
            dual_frontier=dual_frontier,
            kernel=kernel,
        )
        self.epsilon = check_positive(epsilon, "epsilon")
        self.leaf_size = leaf_size
        self.fallback_factor = check_positive(fallback_factor, "fallback_factor")
        self.dtype = check_storage_dtype(dtype).name
        self._tree: KDTree | None = None
        self._grid: SampledGrid | None = None
        self._fallback_memory = 0

    # ------------------------------------------------------------------ index

    def _build_index(self, points: np.ndarray) -> None:
        self._tree = KDTree(
            points,
            leaf_size=self.leaf_size,
            counter=self._counter,
            dtype=self.dtype,
            kernel=self.kernel,
        )
        cell_side = self.epsilon * self.d_cut / np.sqrt(points.shape[1])
        self._grid = SampledGrid(points, cell_side)
        self._fallback_memory = 0

    def get_params(self):
        params = super().get_params()
        params["epsilon"] = self.epsilon
        params["leaf_size"] = self.leaf_size
        params["fallback_factor"] = self.fallback_factor
        params["dtype"] = self.dtype
        return params

    def _index_memory_bytes(self) -> int:
        total = 0
        if self._tree is not None:
            total += self._tree.memory_bytes()
        if self._grid is not None:
            total += self._grid.memory_bytes()
        return total + self._fallback_memory

    def _shared_arrays(self):
        arrays = pack_tree_arrays(self._tree)
        arrays["lattice"] = self._grid.lattice
        return arrays

    # ---------------------------------------------------------------- density

    def _compute_local_density(self, points: np.ndarray) -> np.ndarray:
        tree = self._tree
        grid = self._grid
        lattice = grid.lattice
        n = points.shape[0]
        d_cut = self.d_cut
        rho = np.zeros(n, dtype=np.float64)

        cells = grid.cells()
        costs = np.zeros(len(cells), dtype=np.float64)

        def summarize(position: int, neighbors: np.ndarray) -> tuple[float, list]:
            # A strict range search already returns exactly the points within
            # d_cut of the picked point, so N(c) is read straight off it.
            cell = cells[position]
            keys = distinct_lattice_keys(lattice, neighbors, exclude=cell.key)
            return float(neighbors.size), keys

        if self.engine_ == "dual":
            # Dual-tree picked-point range search: one simultaneous
            # traversal of a small tree over the picked representatives
            # against the point tree answers every cell's range search at
            # once (inclusion-credited subtrees materialise their hits
            # straight from the permutation, no distance computations); the
            # per-cell summaries then run over the identical neighbour sets
            # the batch engine produces.
            picked_arr = np.asarray([cell.picked for cell in cells], dtype=np.intp)
            picked_tree = KDTree(
                points[picked_arr],
                leaf_size=self.leaf_size,
                counter=WorkCounter(),
                dtype=tree.dtype_name,
                kernel=tree.kernel_name,
            )
            neighbor_lists = tree.range_search_dual_vs(
                picked_tree, d_cut, strict=True
            )

            def summarize_chunk(chunk: np.ndarray) -> list[tuple[float, list]]:
                return [
                    summarize(int(position), neighbor_lists[int(position)])
                    for position in chunk
                ]

            chunk_results = self._executor.map_index_chunks(
                summarize_chunk, len(cells)
            )
            summaries = [summary for chunk in chunk_results for summary in chunk]
        elif self.engine_ == "batch":
            picked_arr = np.asarray([cell.picked for cell in cells], dtype=np.intp)

            task = self._process_task(
                kernel_picked_density,
                payload_fn=lambda chunk: {
                    "d_cut": d_cut,
                    "picked": picked_arr[chunk],
                },
            )

            def process_cell_chunk(chunk: np.ndarray) -> list[tuple[float, list]]:
                neighbor_lists = tree.range_search_batch(
                    points[picked_arr[chunk]], d_cut, strict=True
                )
                return [
                    summarize(int(position), neighbors)
                    for position, neighbors in zip(chunk, neighbor_lists)
                ]

            chunk_results = self._executor.map_index_chunks(
                process_cell_chunk, len(cells), task=task
            )
            summaries = [summary for chunk in chunk_results for summary in chunk]
        else:
            def process_cell(position: int) -> tuple[float, list]:
                neighbors = tree.range_search(
                    points[cells[position].picked], d_cut, strict=True
                )
                return summarize(position, neighbors)

            summaries = self._executor.map(process_cell, list(range(len(cells))))

        for position, (cell, (density, neighbor_keys)) in enumerate(
            zip(cells, summaries)
        ):
            cell.density = density
            rho[cell.picked] = density
            cell.neighbor_cells = neighbor_keys
            costs[position] = density + 1.0

        # Non-picked points inherit their representative's density (the paper
        # exempts them from rho_min; sharing the picked density keeps the
        # noise decision consistent within a cell).
        for cell in cells:
            members = cell.point_indices
            rho[members] = np.where(rho[members] > 0.0, rho[members], cell.density)

        self._record_phase("local_density", "greedy", costs)
        return rho

    # ----------------------------------------------------------------- predict

    def _predict_density(self, queries: np.ndarray, executor) -> np.ndarray:
        """Out-of-sample density with the §5 cell-inheritance rule.

        A query falling into a non-empty fitted cell inherits that cell's
        density -- exactly what ``fit`` assigns to the cell's own members, so
        predicting a training point reproduces its fitted density.  Queries in
        brand-new cells behave like freshly picked representatives: one batch
        range count over the fitted set.

        The cell map is derived from the stored points and raw densities (all
        members of a cell share its density), not from the fitted grid object,
        so restored snapshots (which persist no grid) predict identically.
        """
        result = self.check_is_fitted()
        cell_side = self.epsilon * self.d_cut / np.sqrt(self._fit_points_.shape[1])

        cached = getattr(self, "_predict_cells_cache", None)
        if cached is not None and cached[0] is result:
            density_of = cached[1]
        else:
            train_lattice = np.floor(self._fit_points_ / cell_side).astype(np.int64)
            rho_raw = np.asarray(result.rho_raw_, dtype=np.float64)
            density_of: dict[tuple[int, ...], float] = {}
            for key, value in zip(map(tuple, train_lattice.tolist()), rho_raw.tolist()):
                density_of.setdefault(key, value)
            self._predict_cells_cache = (result, density_of)

        rho_q = np.full(queries.shape[0], -1.0, dtype=np.float64)
        query_lattice = np.floor(queries / cell_side).astype(np.int64)
        for position, key in enumerate(map(tuple, query_lattice.tolist())):
            hit = density_of.get(key)
            if hit is not None:
                rho_q[position] = hit

        unknown = np.flatnonzero(rho_q < 0.0)
        if unknown.size:
            tree = self._predict_tree()
            subset = queries[unknown]
            if self.engine_ == "dual":
                rho_q[unknown] = self._dual_density_vs_tree(tree, subset).astype(
                    np.float64
                )
                return rho_q

            def count_chunk(chunk: np.ndarray) -> np.ndarray:
                return tree.range_count_batch(subset[chunk], self.d_cut, strict=True)

            counts = executor.map_index_chunks(count_chunk, unknown.size)
            rho_q[unknown] = np.concatenate(counts).astype(np.float64)
        return rho_q

    # ------------------------------------------------------------ dependencies

    def _compute_dependencies(
        self, points: np.ndarray, rho: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        grid = self._grid
        n = points.shape[0]

        dependent = np.full(n, -1, dtype=np.intp)
        delta = np.full(n, np.inf, dtype=np.float64)
        exact_mask = np.zeros(n, dtype=bool)

        cells = grid.cells()
        picked_indices = grid.picked_points()
        picked_set = set(int(i) for i in picked_indices)

        # Non-picked points: dependent point is the cell's picked point.
        for cell in cells:
            picked = cell.picked
            members = cell.point_indices
            others = members[members != picked]
            if others.size == 0:
                continue
            dependent[others] = picked
            self._counter.add("distance_calcs", float(others.size))
            delta[others] = np.sqrt(
                point_to_points_sq(points[picked], points[others])
            )

        self._record_phase(
            "dependency:cells", "greedy", np.ones(max(len(cells), 1))
        )

        # First phase for picked points: a denser picked point in a
        # neighbouring cell, if one exists.
        undecided: list[int] = []
        for cell in cells:
            picked = int(cell.picked)
            best_neighbor = -1
            best_rho = rho[picked]
            for key in cell.neighbor_cells:
                other = grid.cell(key)
                other_picked = int(other.picked)
                if rho[other_picked] > best_rho:
                    best_rho = rho[other_picked]
                    best_neighbor = other_picked
            if best_neighbor >= 0:
                dependent[picked] = best_neighbor
                self._counter.add("distance_calcs", 1.0)
                delta[picked] = float(
                    np.sqrt(point_to_points_sq(points[picked], points[[best_neighbor]])[0])
                )
            else:
                undecided.append(picked)

        self._record_phase(
            "dependency:phase1", "greedy", np.ones(max(len(picked_indices), 1))
        )

        # Second phase: undecided picked points (roots of temporary clusters).
        if undecided:
            if len(undecided) ** 2 > self.fallback_factor * n:
                self._resolve_roots_partitioned(
                    points, rho, picked_indices, undecided, dependent, delta, exact_mask
                )
            else:
                self._resolve_roots_temporary_clusters(
                    points, rho, picked_indices, picked_set, undecided,
                    dependent, delta, exact_mask,
                )

        return dependent, delta, exact_mask

    # ----------------------------------------------------------------- helpers

    def _resolve_roots_partitioned(
        self,
        points: np.ndarray,
        rho: np.ndarray,
        picked_indices: np.ndarray,
        undecided: list[int],
        dependent: np.ndarray,
        delta: np.ndarray,
        exact_mask: np.ndarray,
    ) -> None:
        """Fallback: exact nearest-denser join restricted to picked points."""
        undecided_arr = np.asarray(undecided, dtype=np.intp)
        outcome = nearest_denser_join(
            points,
            rho,
            engine=self.engine_,
            executor=self._executor,
            counter=self._counter,
            query_indices=undecided_arr,
            candidate_indices=picked_indices,
            tree=self._tree,
            leaf_size=self.leaf_size,
            frontier_target=self.dual_frontier_,
            process_task_builder=self._process_task,
        )
        dependent[undecided_arr] = outcome.dependent
        delta[undecided_arr] = outcome.delta
        exact_mask[undecided_arr] = True
        self._fallback_memory = outcome.memory_bytes
        self._record_phase("dependency:phase2", "greedy", outcome.cost_estimates)

    def _resolve_roots_temporary_clusters(
        self,
        points: np.ndarray,
        rho: np.ndarray,
        picked_indices: np.ndarray,
        picked_set: set[int],
        undecided: list[int],
        dependent: np.ndarray,
        delta: np.ndarray,
        exact_mask: np.ndarray,
    ) -> None:
        """§5 second phase: temporary clusters plus triangle-inequality pruning."""
        undecided_arr = np.asarray(undecided, dtype=np.intp)
        undecided_set = set(int(i) for i in undecided)

        # (1) Form temporary clusters: follow first-phase dependencies from
        # every picked point up to its root (an undecided picked point).
        members_of: dict[int, list[int]] = {int(i): [int(i)] for i in undecided}
        for picked in picked_indices:
            picked = int(picked)
            if picked in undecided_set:
                continue
            node = picked
            while node not in undecided_set:
                parent = int(dependent[node])
                if parent < 0 or parent == node or parent not in picked_set:
                    break
                node = parent
            if node in members_of and picked != node:
                members_of[node].append(picked)

        # (2) Radius of every temporary cluster.
        radius_of: dict[int, float] = {}
        for root, members in members_of.items():
            member_arr = np.asarray(members, dtype=np.intp)
            dists_sq = point_to_points_sq(points[root], points[member_arr])
            radius_of[root] = float(np.sqrt(dists_sq.max())) if member_arr.size else 0.0

        # (3) Nearest denser root for every undecided root (the pruning bound).
        costs = np.zeros(len(undecided), dtype=np.float64)
        root_rho = rho[undecided_arr]
        for position, index in enumerate(undecided_arr):
            index = int(index)
            denser = undecided_arr[root_rho > rho[index]]
            if denser.size == 0:
                # Globally densest picked point: no dependent point exists.
                delta[index] = np.inf
                dependent[index] = -1
                exact_mask[index] = True
                continue
            self._counter.add("distance_calcs", float(denser.size))
            d_sq = point_to_points_sq(points[index], points[denser])
            nearest_pos = int(np.argmin(d_sq))
            bound = float(np.sqrt(d_sq[nearest_pos]))
            best_idx = int(denser[nearest_pos])
            best_dist = bound

            # (4) Prune temporary clusters that cannot contain anything closer,
            # scan the survivors.
            scanned = 0
            for root, members in members_of.items():
                if root == index:
                    continue
                root_dist = float(
                    np.sqrt(point_to_points_sq(points[index], points[[root]])[0])
                )
                if root_dist - radius_of[root] > best_dist:
                    continue
                member_arr = np.asarray(members, dtype=np.intp)
                denser_members = member_arr[rho[member_arr] > rho[index]]
                if denser_members.size == 0:
                    continue
                scanned += denser_members.size
                self._counter.add("distance_calcs", float(denser_members.size) + 1.0)
                d_sq_members = point_to_points_sq(points[index], points[denser_members])
                pos = int(np.argmin(d_sq_members))
                if d_sq_members[pos] < best_dist * best_dist:
                    best_dist = float(np.sqrt(d_sq_members[pos]))
                    best_idx = int(denser_members[pos])

            dependent[index] = best_idx
            delta[index] = best_dist
            exact_mask[index] = True
            costs[position] = denser.size + scanned

        # This quadratic pass parallelises over the undecided roots.
        self._record_phase("dependency:phase2", "greedy", np.maximum(costs, 1.0))
