"""Core Density-Peaks Clustering framework and the paper's three algorithms.

* :class:`repro.core.framework.DensityPeaksBase` -- the shared estimator
  lifecycle (density phase, dependency phase, center/noise selection, label
  propagation) that every algorithm and baseline plugs into.
* :class:`repro.core.ex_dpc.ExDPC` -- the exact algorithm of §3.
* :class:`repro.core.approx_dpc.ApproxDPC` -- the parameter-free approximate
  algorithm of §4.
* :class:`repro.core.s_approx_dpc.SApproxDPC` -- the sampling-based
  approximate algorithm of §5.
* :class:`repro.core.result.DPCResult` -- the result object returned by
  ``fit``.
* :class:`repro.core.decision_graph.DecisionGraph` -- the
  ``(rho, delta)`` scatter used to pick ``rho_min`` / ``delta_min``.
* :class:`repro.core.recluster.ReclusterIndex` -- the
  re-cluster-at-any-parameter index: fit once, re-cut the decision graph at
  any ``(d_cut, rho_min, delta_min)`` with labels bit-identical to a cold
  fit.
"""

from repro.core.approx_dpc import ApproxDPC
from repro.core.decision_graph import DecisionGraph
from repro.core.ex_dpc import ExDPC
from repro.core.framework import DensityPeaksBase
from repro.core.recluster import ReclusterIndex
from repro.core.result import DPCResult
from repro.core.s_approx_dpc import SApproxDPC

__all__ = [
    "DensityPeaksBase",
    "DPCResult",
    "DecisionGraph",
    "ExDPC",
    "ApproxDPC",
    "SApproxDPC",
    "ReclusterIndex",
]
