"""The shared Density-Peaks Clustering estimator lifecycle.

Every algorithm in the paper -- the three contributions (Ex-DPC, Approx-DPC,
S-Approx-DPC) and every baseline (Scan, R-tree + Scan, LSH-DDP, CFSFDP-A) --
follows the same four-step lifecycle:

1. build whatever index the algorithm needs,
2. compute the local density of every point (Definition 1),
3. compute every point's dependent point / distance (Definitions 2 and 3),
4. select noise and cluster centers and propagate labels (Definitions 4-6).

:class:`DensityPeaksBase` implements the lifecycle once: subclasses override
:meth:`DensityPeaksBase._build_index`,
:meth:`DensityPeaksBase._compute_local_density` and
:meth:`DensityPeaksBase._compute_dependencies`, and inherit parameter
handling, tie-breaking, timing, memory accounting, the parallel-phase profile
and the final assignment step.
"""

from __future__ import annotations

import abc
import time
from typing import Any

import numpy as np

from repro.core.assignment import assign_clusters
from repro.core.result import DPCResult
from repro.parallel.backends import ChunkTask, resolve_backend
from repro.parallel.executor import ParallelExecutor, resolve_n_jobs
from repro.parallel.shm import SharedArrayBundle
from repro.parallel.simulate import SimulatedMulticore
from repro.utils.counters import WorkCounter
from repro.utils.rng import ensure_rng, random_tiebreak
from repro.utils.validation import (
    check_non_negative,
    check_points,
    check_positive,
)

__all__ = ["DensityPeaksBase"]


class DensityPeaksBase(abc.ABC):
    """Abstract base class of every DPC estimator in the library.

    Parameters
    ----------
    d_cut:
        The cutoff distance of Definition 1.  Local density is the number of
        points strictly closer than ``d_cut``.
    rho_min:
        Noise threshold (Definition 4).  ``None`` disables noise removal.
    delta_min:
        Cluster-center threshold (Definition 5).  Mutually exclusive with
        ``n_clusters``.
    n_clusters:
        Select exactly this many centers by the ``gamma = rho * delta``
        heuristic instead of thresholding ``delta``.  This is how the
        evaluation section fixes "13 clusters on Syn" / "15 clusters on Sx".
    n_jobs:
        Workers for the parallelisable phases.  ``1`` runs serially
        (recommended for small inputs); ``-1`` uses every CPU the process's
        affinity mask allows.
    backend:
        Execution backend for the parallel phases: ``"serial"``, ``"thread"``
        or ``"process"`` (see ``docs/parallel.md``).  ``None`` (default)
        reads the ``REPRO_DEFAULT_BACKEND`` environment variable and falls
        back to ``"thread"``.  The process backend ships the batch-engine
        phases to worker processes as picklable index-chunk tasks reading the
        dataset and the flattened kd-tree through shared memory; all three
        backends produce bit-for-bit identical results (property-tested).
    seed:
        Seed for the density tie-breaking perturbation (and any internal
        randomness such as LSH directions in subclasses).
    record_costs:
        When true (default) the estimator records per-task cost estimates for
        each parallel phase so that thread-scaling can be simulated afterwards
        via ``result.parallel_profile_``.
    engine:
        Query-execution engine for the density and dependency hot paths.
        ``"batch"`` (the default) issues chunked, vectorised batch queries
        through :meth:`repro.parallel.executor.ParallelExecutor.map_index_chunks`;
        ``"scalar"`` runs the original one-query-per-point code, which is
        slower but exercises the per-query work-counter instrumentation.
        Both engines produce identical results (property-tested); baselines
        that have no batch kernels simply ignore the flag.
    """

    #: Human-readable algorithm name; subclasses override.
    algorithm_name: str = "density-peaks"

    def __init__(
        self,
        d_cut: float,
        *,
        rho_min: float | None = None,
        delta_min: float | None = None,
        n_clusters: int | None = None,
        n_jobs: int = 1,
        backend: str | None = None,
        seed: int | None = 0,
        record_costs: bool = True,
        engine: str = "batch",
    ):
        self.d_cut = check_positive(d_cut, "d_cut")
        self.backend = resolve_backend(backend)
        if engine not in ("scalar", "batch"):
            raise ValueError(
                f"engine must be 'scalar' or 'batch', got {engine!r}"
            )
        self.engine = engine
        self.rho_min = None if rho_min is None else check_non_negative(rho_min, "rho_min")
        if delta_min is not None and n_clusters is not None:
            raise ValueError("delta_min and n_clusters are mutually exclusive")
        if delta_min is None and n_clusters is None:
            raise ValueError(
                "specify either delta_min (threshold on dependent distance) or "
                "n_clusters (number of centers to select); inspect "
                "DPCResult.decision_graph() to choose a threshold"
            )
        self.delta_min = None if delta_min is None else check_positive(delta_min, "delta_min")
        if self.delta_min is not None and self.delta_min <= self.d_cut:
            raise ValueError(
                f"delta_min ({self.delta_min}) must exceed d_cut ({self.d_cut}); "
                "see Definition 5 of the paper"
            )
        self.n_clusters = n_clusters
        if n_clusters is not None and int(n_clusters) <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.seed = seed
        self.record_costs = bool(record_costs)

        # Populated by fit().
        self.result_: DPCResult | None = None

    # ------------------------------------------------------------ subclass API

    @abc.abstractmethod
    def _build_index(self, points: np.ndarray) -> None:
        """Build the algorithm's index structures over ``points``."""

    @abc.abstractmethod
    def _compute_local_density(self, points: np.ndarray) -> np.ndarray:
        """Return the integer local density of every point (Definition 1)."""

    @abc.abstractmethod
    def _compute_dependencies(
        self, points: np.ndarray, rho: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(dependent, delta, exact_mask)``.

        ``dependent[i]`` is the index of point ``i``'s dependent point (``-1``
        for the densest point), ``delta[i]`` its dependent distance and
        ``exact_mask[i]`` whether the dependency was computed exactly.
        """

    def _index_memory_bytes(self) -> int:
        """Approximate memory footprint of the algorithm's index structures."""
        return 0

    # -------------------------------------------------------------- public API

    def fit(self, points) -> DPCResult:
        """Cluster ``points`` and return a :class:`~repro.core.result.DPCResult`.

        The result is also stored on the estimator as ``self.result_``.
        """
        points = check_points(points, min_points=2, name="points")
        rng = ensure_rng(self.seed)
        profile = SimulatedMulticore()
        self._profile = profile
        self._executor = ParallelExecutor(self.n_jobs, backend=self.backend)
        self._counter = WorkCounter()
        self._shared_bundle = None
        timings: dict[str, float] = {}
        work: dict[str, float] = {}

        try:
            start_total = time.perf_counter()

            start = time.perf_counter()
            self._build_index(points)
            timings["index_build"] = time.perf_counter() - start

            start = time.perf_counter()
            work_before = self._counter.get("distance_calcs")
            rho_raw = np.asarray(self._compute_local_density(points), dtype=np.float64)
            work["density_distance_calcs"] = (
                self._counter.get("distance_calcs") - work_before
            )
            timings["local_density"] = time.perf_counter() - start
            if rho_raw.shape[0] != points.shape[0]:
                raise RuntimeError("local density array has the wrong length")

            # Tie-break densities so dependent points are well-defined (§3).
            rho = random_tiebreak(rho_raw, rng)

            start = time.perf_counter()
            work_before = self._counter.get("distance_calcs")
            dependent, delta, exact_mask = self._compute_dependencies(points, rho)
            work["dependency_distance_calcs"] = (
                self._counter.get("distance_calcs") - work_before
            )
            timings["dependency"] = time.perf_counter() - start
            work["total_distance_calcs"] = self._counter.get("distance_calcs")

            start = time.perf_counter()
            labels, centers, noise_mask = assign_clusters(
                rho,
                rho_raw,
                delta,
                dependent,
                rho_min=self.rho_min,
                delta_min=self.delta_min,
                n_clusters=self.n_clusters,
            )
            timings["assignment"] = time.perf_counter() - start
            timings["total"] = time.perf_counter() - start_total

            self._scale_profile_to_timings(profile, timings)
            memory_bytes = self._total_memory_bytes(points)
        finally:
            self._release_parallel_resources()

        dependent = np.asarray(dependent, dtype=np.intp).copy()
        dependent[centers] = -1  # a center's dependent point is itself (§2.1)

        result = DPCResult(
            labels_=labels,
            rho_=rho,
            rho_raw_=rho_raw.astype(np.int64)
            if np.allclose(rho_raw, np.round(rho_raw))
            else rho_raw,
            delta_=np.asarray(delta, dtype=np.float64),
            dependent_=dependent,
            centers_=np.asarray(centers, dtype=np.intp),
            noise_mask_=np.asarray(noise_mask, dtype=bool),
            n_clusters_=int(len(centers)),
            exact_dependency_mask_=np.asarray(exact_mask, dtype=bool),
            timings_=timings,
            work_=work,
            memory_bytes_=memory_bytes,
            parallel_profile_=profile,
            params_=self.get_params(),
            algorithm_=self.algorithm_name,
        )
        self.result_ = result
        return result

    def fit_predict(self, points) -> np.ndarray:
        """Cluster ``points`` and return only the label array."""
        return self.fit(points).labels_

    def get_params(self) -> dict[str, Any]:
        """Return the estimator parameters as a plain dictionary."""
        return {
            "algorithm": self.algorithm_name,
            "d_cut": self.d_cut,
            "rho_min": self.rho_min,
            "delta_min": self.delta_min,
            "n_clusters": self.n_clusters,
            "n_jobs": self.n_jobs,
            "backend": self.backend,
            "seed": self.seed,
            "engine": self.engine,
        }

    def __repr__(self) -> str:
        params = ", ".join(
            f"{key}={value!r}"
            for key, value in self.get_params().items()
            if key != "algorithm" and value is not None
        )
        return f"{type(self).__name__}({params})"

    # ----------------------------------------------------------------- helpers

    def _record_phase(
        self,
        name: str,
        policy: str,
        task_costs,
        serial_overhead: float = 0.0,
    ) -> None:
        """Record a parallel phase on the current run's profile (if enabled)."""
        if not self.record_costs:
            return
        self._profile.add_phase(name, policy, task_costs, serial_overhead)

    def _scale_profile_to_timings(
        self, profile: SimulatedMulticore, timings: dict[str, float]
    ) -> None:
        """Rescale recorded per-task cost estimates to measured phase seconds.

        Subclasses record *relative* per-task costs (the same cost models the
        paper's partitioner uses).  To make simulated makespans comparable to
        wall-clock measurements, each phase's costs are rescaled so that their
        total equals the measured duration of the lifecycle step the phase
        belongs to (phases are named ``"<step>:<detail>"`` or ``"<step>"``).
        """
        step_phase_totals: dict[str, float] = {}
        for phase in profile.phases:
            step = phase.name.split(":", 1)[0]
            step_phase_totals[step] = step_phase_totals.get(step, 0.0) + phase.total_cost
        for phase in profile.phases:
            step = phase.name.split(":", 1)[0]
            measured = timings.get(step)
            recorded_total = step_phase_totals.get(step, 0.0)
            if measured is None or recorded_total <= 0.0:
                continue
            scale = measured / recorded_total
            phase.task_costs = phase.task_costs * scale
            phase.serial_overhead = phase.serial_overhead * scale

    def _total_memory_bytes(self, points: np.ndarray) -> int:
        """Points + index structures + per-point result arrays + shared memory.

        The index term includes the flattened kd-tree arrays (node bounds,
        split dims/values, children, and the point-index permutation; see
        :class:`repro.index.kdtree.KDTreeArrays`) through each algorithm's
        :meth:`_index_memory_bytes`.  The shared-memory segment published for
        the process backend is physical memory paid exactly once -- workers
        map the same pages -- so it is counted once here, never per worker.
        """
        per_point_arrays = 5  # rho, rho_raw, delta, dependent, labels
        return int(
            points.nbytes
            + self._index_memory_bytes()
            + per_point_arrays * 8 * points.shape[0]
            + self._shared_memory_bytes()
        )

    def _shared_memory_bytes(self) -> int:
        """Size of the shared-memory segment published for the process backend."""
        bundle = getattr(self, "_shared_bundle", None)
        return bundle.nbytes if bundle is not None else 0

    # ------------------------------------------------------- process backend

    def _shared_arrays(self) -> dict[str, np.ndarray] | None:
        """Arrays to publish to worker processes (subclass hook).

        Subclasses with process kernels return a flat name -> array mapping
        (typically the point matrix plus the flattened kd-tree via
        :func:`repro.parallel.backends.pack_tree_arrays`); ``None`` (the
        default) means the algorithm has no process kernels and its phases
        fall back to the thread path under the process backend.
        """
        return None

    def _process_task(self, kernel, payload=None, payload_fn=None) -> ChunkTask | None:
        """Build the process-backend task descriptor for one parallel phase.

        Returns ``None`` unless this fit runs on the process backend and the
        subclass publishes shared arrays; the caller then simply passes the
        result as ``task=`` to ``map_index_chunks``, keeping the serial and
        thread paths untouched.  The backing shared-memory segment is created
        on first use and reused by every later phase of the same fit.
        """
        if self._executor.backend != "process":
            return None
        if self._shared_bundle is None:
            arrays = self._shared_arrays()
            if arrays is None:
                return None
            self._shared_bundle = SharedArrayBundle.create(arrays)
        return ChunkTask(
            kernel=kernel,
            spec=self._shared_bundle.spec,
            payload=payload or {},
            payload_fn=payload_fn,
            counter=self._counter,
        )

    def _release_parallel_resources(self) -> None:
        """Tear down the worker pool and the shared-memory segment (fit end).

        Order matters: the pool is drained first so no worker still maps the
        segment, then the owner closes its mapping and unlinks the segment
        name.  ``memory_bytes_`` is computed before this runs.
        """
        executor = getattr(self, "_executor", None)
        if executor is not None:
            executor.close()
        bundle = getattr(self, "_shared_bundle", None)
        if bundle is not None:
            bundle.close()
            bundle.unlink()
            self._shared_bundle = None
