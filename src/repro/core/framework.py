"""The shared Density-Peaks Clustering estimator lifecycle.

Every algorithm in the paper -- the three contributions (Ex-DPC, Approx-DPC,
S-Approx-DPC) and every baseline (Scan, R-tree + Scan, LSH-DDP, CFSFDP-A) --
follows the same four-step lifecycle:

1. build whatever index the algorithm needs,
2. compute the local density of every point (Definition 1),
3. compute every point's dependent point / distance (Definitions 2 and 3),
4. select noise and cluster centers and propagate labels (Definitions 4-6).

:class:`DensityPeaksBase` implements the lifecycle once: subclasses override
:meth:`DensityPeaksBase._build_index`,
:meth:`DensityPeaksBase._compute_local_density` and
:meth:`DensityPeaksBase._compute_dependencies`, and inherit parameter
handling, tie-breaking, timing, memory accounting, the parallel-phase profile
and the final assignment step.
"""

from __future__ import annotations

import abc
import os
import time
from typing import Any

import numpy as np

from repro.core.assignment import NOISE_LABEL, assign_clusters, propagate_labels
from repro.core.dependency_join import attach_targets
from repro.core.predict import (
    float32_density_recheck,
    nearest_denser_bruteforce,
    predict_density_bruteforce,
)
from repro.index.kdtree import (
    DUAL_FRONTIER_AUTO,
    adaptive_dual_frontier,
    resolve_dual_frontier,
)
from repro.kernels import resolve_kernel
from repro.core.result import DPCResult, canonical_rho_raw
from repro.parallel.backends import (
    ChunkTask,
    kernel_predict_attach,
    kernel_predict_density,
    pack_tree_arrays,
    resolve_backend,
)
from repro.parallel.executor import ParallelExecutor, resolve_n_jobs
from repro.parallel.shm import SharedArrayBundle
from repro.parallel.simulate import SimulatedMulticore
from repro.utils.counters import WorkCounter
from repro.utils.rng import draw_tiebreak_jitter, ensure_rng
from repro.utils.validation import (
    check_non_negative,
    check_points,
    check_positive,
)

__all__ = [
    "DensityPeaksBase",
    "ENGINES",
    "ENGINE_CHOICES",
    "AUTO_DUAL_MAX_DIM",
    "DEFAULT_ENGINE_ENV",
    "resolve_engine",
    "effective_engine",
]

#: Query-execution engines of the density/dependency hot paths.
ENGINES = ("scalar", "batch", "dual")

#: Accepted values of the ``engine`` parameter: the concrete engines plus
#: ``"auto"``, which resolves per fit from the data dimensionality (see
#: :func:`effective_engine` and the engine x dimension table in
#: ``docs/performance.md``).
ENGINE_CHOICES = ENGINES + ("auto",)

#: Largest dimensionality at which ``engine="auto"`` picks the dual-tree
#: engine.  With the blocked kernel tier supplying one canonical sequential
#: accumulation at every dimensionality, the dual engine wins the combined
#: density+dependency workload at every dimension of the recorded sweep
#: (d = 2..5: the nearest-denser join is 2.4-5.4x faster than batch
#: throughout, and the density self-join wins or ties except a ~0.8x
#: residual at d=4 caused by node-granular pruning visiting ~1.2x more
#: pairs, not by arithmetic; see docs/performance.md).  Above the measured
#: range ``"auto"`` stays with the batch engine pending measurement.
AUTO_DUAL_MAX_DIM = 5

#: Environment variable naming the engine used when an estimator is built
#: with ``engine=None``; CI exercises the dual engine by exporting it.
DEFAULT_ENGINE_ENV = "REPRO_DEFAULT_ENGINE"


def resolve_engine(engine: str | None) -> str:
    """Normalise an ``engine`` parameter.

    ``None`` reads :data:`DEFAULT_ENGINE_ENV` (default ``"batch"``); any
    explicit value must be one of :data:`ENGINE_CHOICES`.  ``"auto"`` is
    kept symbolic here and resolved against the data dimensionality at fit
    time (:func:`effective_engine`).
    """
    if engine is None:
        engine = os.environ.get(DEFAULT_ENGINE_ENV) or "batch"
    if engine not in ENGINE_CHOICES:
        raise ValueError(
            f"engine must be one of {ENGINE_CHOICES}, got {engine!r}"
        )
    return engine


def effective_engine(engine: str, dim: int) -> str:
    """Resolve an engine parameter against the data dimensionality.

    Concrete engines pass through; ``"auto"`` picks the dual-tree engine up
    to :data:`AUTO_DUAL_MAX_DIM` dimensions and the batch engine above it
    (the measured crossover of the engine x dimension table in
    ``docs/performance.md``).
    """
    if engine != "auto":
        return engine
    return "dual" if int(dim) <= AUTO_DUAL_MAX_DIM else "batch"


class DensityPeaksBase(abc.ABC):
    """Abstract base class of every DPC estimator in the library.

    Parameters
    ----------
    d_cut:
        The cutoff distance of Definition 1.  Local density is the number of
        points strictly closer than ``d_cut``.
    rho_min:
        Noise threshold (Definition 4).  ``None`` disables noise removal.
    delta_min:
        Cluster-center threshold (Definition 5).  Mutually exclusive with
        ``n_clusters``.
    n_clusters:
        Select exactly this many centers by the ``gamma = rho * delta``
        heuristic instead of thresholding ``delta``.  This is how the
        evaluation section fixes "13 clusters on Syn" / "15 clusters on Sx".
    n_jobs:
        Workers for the parallelisable phases.  ``1`` runs serially
        (recommended for small inputs); ``-1`` uses every CPU the process's
        affinity mask allows.
    backend:
        Execution backend for the parallel phases: ``"serial"``, ``"thread"``
        or ``"process"`` (see ``docs/parallel.md``).  ``None`` (default)
        reads the ``REPRO_DEFAULT_BACKEND`` environment variable and falls
        back to ``"thread"``.  The process backend ships the batch-engine
        phases to worker processes as picklable index-chunk tasks reading the
        dataset and the flattened kd-tree through shared memory; all three
        backends produce bit-for-bit identical results (property-tested).
    seed:
        Seed for the density tie-breaking perturbation (and any internal
        randomness such as LSH directions in subclasses).
    record_costs:
        When true (default) the estimator records per-task cost estimates for
        each parallel phase so that thread-scaling can be simulated afterwards
        via ``result.parallel_profile_``.
    engine:
        Query-execution engine for the density and dependency hot paths.
        ``"batch"`` issues chunked, vectorised batch queries through
        :meth:`repro.parallel.executor.ParallelExecutor.map_index_chunks`;
        ``"dual"`` additionally runs the density phase as a dual-tree
        self-join (:meth:`repro.index.kdtree.KDTree.range_count_dual` and
        friends) and the dependency phase as a dual-tree nearest-denser
        join (:meth:`repro.index.kdtree.KDTree.nn_dual_vs`, dispatched
        through :mod:`repro.core.dependency_join`), which amortises pruning
        across whole query subtrees and is the fastest option on
        low-dimensional data (see ``docs/performance.md``); ``"scalar"``
        runs the original one-query-per-point code, which is slower but
        exercises the per-query work-counter instrumentation; ``"auto"``
        resolves per fit from the data dimensionality (dual up to
        ``AUTO_DUAL_MAX_DIM`` dimensions, batch above).  ``None`` (the
        default) reads the ``REPRO_DEFAULT_ENGINE`` environment variable
        and falls back to ``"batch"``.  All engines produce bit-for-bit
        identical densities, dependencies and labels (property-tested);
        baselines that have no batch/dual kernels simply ignore the flag.
    dual_frontier:
        Number of independent work units the dual engine expands its
        traversals into (the canonical chunking shared by every execution
        backend, so results and work counters stay backend-invariant).
        ``"auto"`` (the default) sizes the frontier from the fitted data
        size and leaf size (:func:`repro.index.kdtree.adaptive_dual_frontier`
        -- deterministic, so replays are identical); an explicit positive
        integer pins it.  ``None`` reads the ``REPRO_DUAL_FRONTIER``
        environment variable and falls back to ``"auto"``.  The value
        resolved at fit time is exposed as ``dual_frontier_`` and recorded
        in ``get_params()`` -- and therefore in model snapshots -- so
        restored models stay counter-deterministic.
    kernel:
        Blocked distance-kernel tier of the hot paths: ``"numpy"`` (always
        available), ``"numba"`` (JIT-compiled loops), ``"cupy"`` (CUDA), or
        ``"auto"`` (numba when installed, else numpy; never cupy
        implicitly).  ``None`` reads the ``REPRO_KERNEL`` environment
        variable and falls back to ``"auto"``.  Every tier produces
        bit-identical results and work counters (property-tested), so the
        choice is purely a performance knob; requesting a tier whose
        optional dependency is missing raises at dispatch time.  See
        ``docs/kernels.md``.
    """

    #: Human-readable algorithm name; subclasses override.
    algorithm_name: str = "density-peaks"

    #: Whether this estimator supports the re-cluster-at-any-parameter index
    #: (:mod:`repro.core.recluster`).  Only exact algorithms whose density /
    #: dependency definitions are pure functions of ``(points, d_cut, seed)``
    #: can replay a cold fit from persisted profiles; approximate algorithms
    #: entangle ``d_cut`` with their index construction and must refit.
    supports_recluster: bool = False

    def __init__(
        self,
        d_cut: float,
        *,
        rho_min: float | None = None,
        delta_min: float | None = None,
        n_clusters: int | None = None,
        n_jobs: int = 1,
        backend: str | None = None,
        seed: int | None = 0,
        record_costs: bool = True,
        engine: str | None = None,
        dual_frontier=None,
        kernel: str | None = None,
    ):
        self.d_cut = check_positive(d_cut, "d_cut")
        self.backend = resolve_backend(backend)
        self.engine = resolve_engine(engine)
        self.dual_frontier = resolve_dual_frontier(dual_frontier)
        self.kernel = resolve_kernel(kernel)
        self.rho_min = None if rho_min is None else check_non_negative(rho_min, "rho_min")
        if delta_min is not None and n_clusters is not None:
            raise ValueError("delta_min and n_clusters are mutually exclusive")
        if delta_min is None and n_clusters is None:
            raise ValueError(
                "specify either delta_min (threshold on dependent distance) or "
                "n_clusters (number of centers to select); inspect "
                "DPCResult.decision_graph() to choose a threshold"
            )
        self.delta_min = None if delta_min is None else check_positive(delta_min, "delta_min")
        if self.delta_min is not None and self.delta_min <= self.d_cut:
            raise ValueError(
                f"delta_min ({self.delta_min}) must exceed d_cut ({self.d_cut}); "
                "see Definition 5 of the paper"
            )
        self.n_clusters = n_clusters
        if n_clusters is not None and int(n_clusters) <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.seed = seed
        self.record_costs = bool(record_costs)

        # Populated by fit().
        self.result_: DPCResult | None = None

    # ------------------------------------------------------------ subclass API

    @abc.abstractmethod
    def _build_index(self, points: np.ndarray) -> None:
        """Build the algorithm's index structures over ``points``."""

    @abc.abstractmethod
    def _compute_local_density(self, points: np.ndarray) -> np.ndarray:
        """Return the integer local density of every point (Definition 1)."""

    @abc.abstractmethod
    def _compute_dependencies(
        self, points: np.ndarray, rho: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(dependent, delta, exact_mask)``.

        ``dependent[i]`` is the index of point ``i``'s dependent point (``-1``
        for the densest point), ``delta[i]`` its dependent distance and
        ``exact_mask[i]`` whether the dependency was computed exactly.
        """

    def _index_memory_bytes(self) -> int:
        """Approximate memory footprint of the algorithm's index structures."""
        return 0

    def _check_fit_points(self, points) -> np.ndarray:
        """Validate and canonicalise the fit input (hook for subclasses).

        The default materialises a contiguous float64 matrix via
        :func:`~repro.utils.validation.check_points`.  Out-of-core estimators
        (the sharded streaming fit) override this to keep an already
        chunk-validated memmap as-is instead of copying it into RAM.
        """
        return check_points(points, min_points=2, name="points")

    # -------------------------------------------------------------- public API

    def fit(self, points) -> DPCResult:
        """Cluster ``points`` and return a :class:`~repro.core.result.DPCResult`.

        The result is also stored on the estimator as ``self.result_``.
        """
        points = self._check_fit_points(points)
        # Invalidate fitted state up front: _build_index replaces the index in
        # place, so a refit that fails mid-way must leave the estimator
        # *unfitted* (predict refuses) rather than a silent mix of the old
        # result and the new index.
        self.result_ = None
        self._tiebreak_jitter_ = None
        self._recluster_index_ = None
        # engine="auto" resolves against the data dimensionality; the
        # subclass hot paths read the resolved engine through `engine_`.
        self._fit_dim = int(points.shape[1])
        # dual_frontier="auto" resolves against the data size (deterministic
        # in n and leaf size, so replays are identical); the subclass hot
        # paths read the resolved value through `dual_frontier_` and
        # get_params() records it for snapshots.
        if self.dual_frontier == DUAL_FRONTIER_AUTO:
            self._dual_frontier_ = adaptive_dual_frontier(
                points.shape[0], getattr(self, "leaf_size", 32)
            )
        else:
            self._dual_frontier_ = self.dual_frontier
        rng = ensure_rng(self.seed)
        profile = SimulatedMulticore()
        self._profile = profile
        self._executor = ParallelExecutor(self.n_jobs, backend=self.backend)
        self._counter = WorkCounter()
        self._shared_bundle = None
        timings: dict[str, float] = {}
        work: dict[str, float] = {}

        try:
            start_total = time.perf_counter()

            start = time.perf_counter()
            self._build_index(points)
            timings["index_build"] = time.perf_counter() - start

            # Tie-break densities so dependent points are well-defined (§3).
            # The jitter is kept on the estimator (and in model snapshots):
            # re-clustering at a different d_cut re-applies the *same* jitter
            # to the new integer counts, which is what keeps its tie-broken
            # densities -- and therefore its dependency forest -- bit-identical
            # to a cold fit at that d_cut.  Drawn *before* the density phase
            # (it depends only on n and the rng, and this is the rng's first
            # draw, so the values are unchanged): the shard pipeline overlaps
            # the dependency stages with density work and reads the jitter
            # through `_tiebreak_jitter_` to tie-break per-shard densities
            # exactly as this method will.
            jitter = draw_tiebreak_jitter((points.shape[0],), rng)
            self._tiebreak_jitter_ = jitter

            start = time.perf_counter()
            work_before = self._counter.get("distance_calcs")
            rho_raw = np.asarray(self._compute_local_density(points), dtype=np.float64)
            work["density_distance_calcs"] = (
                self._counter.get("distance_calcs") - work_before
            )
            timings["local_density"] = time.perf_counter() - start
            if rho_raw.shape[0] != points.shape[0]:
                raise RuntimeError("local density array has the wrong length")

            rho = rho_raw + jitter

            # Attach the per-node density maxima the nearest-denser join
            # prunes with; also persisted into model snapshots so restored
            # models serve without recomputing them.  Only dual-engine fits
            # ever read them (a later dual `predict` on a batch-fit model
            # computes them lazily through the join's identity-keyed cache),
            # so other engines skip the sweep and keep snapshots lean.
            if self.engine_ == "dual":
                tree = self._predict_tree()
                if tree is not None and hasattr(tree, "attach_density_bounds"):
                    tree.attach_density_bounds(rho)

            start = time.perf_counter()
            work_before = self._counter.get("distance_calcs")
            dependent, delta, exact_mask = self._compute_dependencies(points, rho)
            work["dependency_distance_calcs"] = (
                self._counter.get("distance_calcs") - work_before
            )
            timings["dependency"] = time.perf_counter() - start
            work["total_distance_calcs"] = self._counter.get("distance_calcs")

            start = time.perf_counter()
            labels, centers, noise_mask = assign_clusters(
                rho,
                rho_raw,
                delta,
                dependent,
                rho_min=self.rho_min,
                delta_min=self.delta_min,
                n_clusters=self.n_clusters,
            )
            timings["assignment"] = time.perf_counter() - start
            timings["total"] = time.perf_counter() - start_total

            self._scale_profile_to_timings(profile, timings)
            memory_bytes = self._total_memory_bytes(points)
        finally:
            self._release_parallel_resources()

        self._fit_points_ = points  # only on success, matching result_
        self._tiebreak_jitter_ = jitter
        dependent = np.asarray(dependent, dtype=np.intp).copy()
        dependent_raw = dependent.copy()
        dependent[centers] = -1  # a center's dependent point is itself (§2.1)

        result = DPCResult(
            labels_=labels,
            rho_=rho,
            rho_raw_=canonical_rho_raw(rho_raw),
            delta_=np.asarray(delta, dtype=np.float64),
            dependent_=dependent,
            centers_=np.asarray(centers, dtype=np.intp),
            noise_mask_=np.asarray(noise_mask, dtype=bool),
            n_clusters_=int(len(centers)),
            exact_dependency_mask_=np.asarray(exact_mask, dtype=bool),
            timings_=timings,
            work_=work,
            memory_bytes_=memory_bytes,
            parallel_profile_=profile,
            params_=self.get_params(),
            algorithm_=self.algorithm_name,
            dependent_raw_=dependent_raw,
        )
        self.result_ = result
        return result

    def fit_predict(self, points) -> np.ndarray:
        """Cluster ``points`` and return only the label array."""
        return self.fit(points).labels_

    @property
    def engine_(self) -> str:
        """The effective query engine of the current/last fit.

        Identical to :attr:`engine` for concrete engines; ``"auto"``
        resolves against the fitted data dimensionality (and therefore
        requires a fit or a restored snapshot).
        """
        if self.engine != "auto":
            return self.engine
        dim = getattr(self, "_fit_dim", None)
        if dim is None:
            points = getattr(self, "_fit_points_", None)
            if points is None:
                raise RuntimeError(
                    "engine='auto' resolves against the data dimensionality; "
                    "fit the estimator (or load a snapshot) first"
                )
            dim = points.shape[1]
        return effective_engine(self.engine, dim)

    @property
    def dual_frontier_(self) -> int:
        """The resolved dual-frontier target of the current/last fit.

        Identical to :attr:`dual_frontier` for explicit integer values;
        ``"auto"`` resolves against the fitted data size via
        :func:`repro.index.kdtree.adaptive_dual_frontier` (and therefore
        requires a fit or a restored snapshot).
        """
        value = getattr(self, "_dual_frontier_", None)
        if value is not None:
            return value
        if self.dual_frontier != DUAL_FRONTIER_AUTO:
            return self.dual_frontier
        points = getattr(self, "_fit_points_", None)
        if points is None:
            raise RuntimeError(
                "dual_frontier='auto' resolves against the fitted data size; "
                "fit the estimator (or load a snapshot) first"
            )
        value = adaptive_dual_frontier(
            points.shape[0], getattr(self, "leaf_size", 32)
        )
        self._dual_frontier_ = value
        return value

    # ----------------------------------------------------------- re-clustering

    def recluster_index(self, *, d_cut_max: float | None = None, rebuild: bool = False):
        """Build (and cache) the re-cluster-at-any-parameter index.

        The index persists every point's sorted neighbor-distance profile up
        to ``d_cut_max`` (default: twice the fitted ``d_cut``) plus the fitted
        dependency forest; :meth:`repro.core.recluster.ReclusterIndex.recluster`
        then answers any ``(d_cut, rho_min, delta_min)`` with labels
        bit-identical to a cold :meth:`fit` at those parameters, at a fraction
        of the cost.  Only estimators with ``supports_recluster = True``
        (Ex-DPC) can build one.  The index is cached on the estimator and
        reused by :meth:`recluster`; pass ``rebuild=True`` (or a different
        ``d_cut_max``) to force a fresh build.
        """
        from repro.core.recluster import ReclusterIndex

        cached = getattr(self, "_recluster_index_", None)
        if (
            cached is not None
            and not rebuild
            and (d_cut_max is None or float(d_cut_max) == cached.d_cut_max)
        ):
            return cached
        index = ReclusterIndex.from_estimator(self, d_cut_max=d_cut_max)
        self._recluster_index_ = index
        return index

    def recluster(
        self,
        d_cut: float | None = None,
        *,
        rho_min: float | None = None,
        delta_min: float | None = None,
        n_clusters: int | None = None,
        d_cut_max: float | None = None,
    ) -> DPCResult:
        """Re-cluster the fitted data at new parameters without refitting.

        Convenience wrapper over :meth:`recluster_index`; see
        :meth:`repro.core.recluster.ReclusterIndex.recluster` for the exact
        parameter semantics.  ``d_cut=None`` keeps the fitted cutoff.
        """
        return self.recluster_index(d_cut_max=d_cut_max).recluster(
            d_cut, rho_min=rho_min, delta_min=delta_min, n_clusters=n_clusters
        )

    # ------------------------------------------------------ online prediction

    def check_is_fitted(self) -> DPCResult:
        """Return the fitted result, raising ``RuntimeError`` if unfitted."""
        if self.result_ is None or getattr(self, "_fit_points_", None) is None:
            raise RuntimeError(
                f"this {type(self).__name__} instance is not fitted yet; "
                "call fit() (or load a snapshot with repro.io.load_model) first"
            )
        return self.result_

    def predict(self, points, *, float32_recheck: bool | None = None) -> np.ndarray:
        """Assign out-of-sample ``points`` to the fitted clusters.

        Each query point ``q`` follows the same rule ``fit`` applies to every
        non-center point (Definition 6, one step beyond the training set):

        1. ``q``'s local density is the number of *fitted* points strictly
           within ``d_cut`` (for a point of the training set this reproduces
           its fitted density exactly);
        2. ``q`` attaches to its dependency target -- the nearest fitted point
           with higher (tie-broken) density -- and inherits that point's
           cluster label, labels forwarding through fitted noise points just
           as they do during ``fit``'s propagation;
        3. mirroring ``fit``'s noise rule (Definition 4), queries whose
           density falls below ``rho_min`` are labelled ``-1``.

        A query denser than every fitted point (a brand-new density peak)
        attaches to its plain nearest neighbour -- serving cannot mint new
        clusters; refit (or stream with :class:`repro.stream.StreamingDPC`)
        to materialise new structure.

        Consequently ``predict`` on the training matrix returns ``fit``'s own
        labels: every training point resolves to itself at distance zero
        because its tie-broken density exceeds its integer density.

        The density and attachment passes are issued as chunked batch queries
        through the estimator's executor, so ``n_jobs``/``backend`` behave as
        in :meth:`fit` (the process backend ships the fitted kd-tree and
        densities to workers through shared memory; index-free estimators
        fall back to threads).

        ``float32_recheck`` controls the float32 serving policy on
        float32-storage models: the density pass still runs the float32
        kernels, but queries with a fitted point within a few float32 ulps
        of ``d_cut`` get their density recomputed with the exact float64
        arithmetic over the original coordinates
        (:func:`repro.core.predict.float32_density_recheck`), so the density
        -- and therefore the noise test and attachment eligibility -- match
        the float64 counts for every query inside the documented accuracy
        envelope (``docs/performance.md``).  The flag is a no-op on float64
        models.

        .. note:: **Changed default.** The re-check used to be opt-in (the
           predict server enabled it; the library default was off).  It is
           now the library-wide default for float32 models
           (``float32_recheck=None`` resolves to ``True`` when the model's
           storage dtype is float32).  Pass ``float32_recheck=False`` to
           restore the raw float32 counts -- note the fitted labels
           themselves are defined by the float32 counts, so re-checking the
           training matrix can legitimately diverge from ``labels_`` for
           queries at the cutoff.
        """
        if float32_recheck is None:
            float32_recheck = getattr(self, "dtype", "float64") == "float32"
        result = self.check_is_fitted()
        dim = self._fit_points_.shape[1]
        queries = np.asarray(points, dtype=np.float64)
        if queries.ndim == 1 and queries.shape[0] == dim:
            queries = queries.reshape(1, -1)  # a bare (d,) vector is one query
        queries = check_points(queries, min_points=1, name="points")
        if queries.shape[1] != dim:
            raise ValueError(
                f"query points have dimension {queries.shape[1]}, "
                f"but the model was fitted on dimension {dim}"
            )
        if getattr(self, "_counter", None) is None:
            self._counter = WorkCounter()
        # One executor per call: concurrent predicts (the serving scenario)
        # each own their pool and, on the process backend, their shared-memory
        # bundle; close() tears both down.
        executor = ParallelExecutor(self.n_jobs, backend=self.backend)
        try:
            rho_q = self._predict_density(queries, executor)
            if float32_recheck and getattr(self, "dtype", "float64") == "float32":
                exact, uncertain = float32_density_recheck(
                    self._fit_points_, queries, self.d_cut, counter=self._counter
                )
                rho_q = np.where(uncertain, exact.astype(np.float64), rho_q)
            targets = self._predict_attach(queries, rho_q, executor)
        finally:
            executor.close()

        attach = self._attachment_labels()
        labels = np.where(targets >= 0, attach[np.clip(targets, 0, None)], NOISE_LABEL)
        if self.rho_min is not None:
            labels = np.where(rho_q < self.rho_min, NOISE_LABEL, labels)
        return labels.astype(np.int64)

    def _attachment_labels(self) -> np.ndarray:
        """Per-training-point labels used for attachment (cached per result).

        Label propagation *without* the final noise masking: a fitted noise
        point forwards its chain root's label (exactly as inside ``fit``), so
        a query attaching to a border point still lands in the right cluster;
        the query's own ``rho_min`` test decides its noise status.
        """
        result = self.check_is_fitted()
        cached = getattr(self, "_attach_labels_cache", None)
        if cached is not None and cached[0] is result:
            return cached[1]
        dependent = (
            result.dependent_raw_
            if result.dependent_raw_ is not None
            else result.dependent_
        )
        labels = propagate_labels(
            dependent, result.centers_, np.zeros(result.n_points, dtype=bool)
        )
        self._attach_labels_cache = (result, labels)
        return labels

    def _predict_tree(self):
        """The fitted kd-tree used by the predict hot path (``None``: brute force)."""
        return getattr(self, "_tree", None)

    def _predict_shared_arrays(self) -> dict[str, np.ndarray] | None:
        """Arrays published to worker processes for the predict phases."""
        tree = self._predict_tree()
        if tree is None:
            return None
        arrays = pack_tree_arrays(tree)
        arrays["rho"] = np.asarray(self.result_.rho_, dtype=np.float64)
        return arrays

    def _predict_process_task(self, executor, kernel, payload_fn) -> ChunkTask | None:
        """Process-backend descriptor for one predict phase (cf. ``_process_task``).

        The backing segment is created on first use and stored on the
        per-call ``executor`` (created and torn down inside :meth:`predict`),
        so concurrent predict calls never share or clobber each other's
        bundle.
        """
        if executor.backend != "process":
            return None
        if executor._predict_bundle is None:
            arrays = self._predict_shared_arrays()
            if arrays is None:
                return None
            executor._predict_bundle = SharedArrayBundle.create(arrays)
        return ChunkTask(
            kernel=kernel,
            spec=executor._predict_bundle.spec,
            payload_fn=payload_fn,
            counter=self._counter,
        )

    def _dual_density_vs_tree(self, tree, queries: np.ndarray) -> np.ndarray:
        """Dual-tree join of out-of-sample ``queries`` against the fitted tree.

        Builds a throwaway kd-tree over the queries (same storage dtype) and
        runs one simultaneous traversal instead of per-chunk batch counts;
        the result is bit-for-bit identical to the batch path.  Driver-side
        on every backend, so results and work counters are
        backend-independent.
        """
        from repro.index.kdtree import KDTree
        from repro.utils.counters import WorkCounter

        query_tree = KDTree(
            queries,
            leaf_size=tree.leaf_size,
            counter=WorkCounter(),
            dtype=tree.dtype_name,
            kernel=tree.kernel_name,
        )
        return tree.range_count_dual_vs(query_tree, self.d_cut, strict=True)

    def _predict_density(self, queries: np.ndarray, executor) -> np.ndarray:
        """Raw (integer-scale) local density of each query over the fitted set."""
        tree = self._predict_tree()
        d_cut = self.d_cut
        n_q = queries.shape[0]
        if tree is not None and self.engine_ == "dual" and n_q:
            return self._dual_density_vs_tree(tree, queries).astype(np.float64)
        if tree is not None:
            task = self._predict_process_task(
                executor,
                kernel_predict_density,
                lambda chunk: {"queries": queries[chunk], "d_cut": d_cut},
            )

            def count_chunk(chunk: np.ndarray) -> np.ndarray:
                return tree.range_count_batch(queries[chunk], d_cut, strict=True)

            counts = executor.map_index_chunks(count_chunk, n_q, task=task)
        else:
            train = self._fit_points_
            counter = self._counter

            def count_chunk(chunk: np.ndarray) -> np.ndarray:
                return predict_density_bruteforce(
                    train, queries[chunk], d_cut, counter=counter
                )

            counts = executor.map_index_chunks(count_chunk, n_q)
        if not counts:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate(counts).astype(np.float64)

    def _predict_attach(
        self, queries: np.ndarray, rho_q: np.ndarray, executor
    ) -> np.ndarray:
        """Dependency target (nearest denser fitted point) of each query.

        Routed through the unified nearest-denser join layer
        (:func:`repro.core.dependency_join.attach_targets`): the batch and
        scalar engines run the escalating-kNN search in executor chunks,
        ``engine="dual"`` joins a throwaway tree over the queries against
        the fitted tree in one simultaneous traversal.  Index-free
        estimators fall back to the brute-force kernel.
        """
        result = self.result_
        rho_train = np.asarray(result.rho_, dtype=np.float64)
        tree = self._predict_tree()
        n_q = queries.shape[0]
        if tree is not None:
            task = self._predict_process_task(
                executor,
                kernel_predict_attach,
                lambda chunk: {"queries": queries[chunk], "rho_q": rho_q[chunk]},
            )
            return attach_targets(
                tree,
                rho_train,
                queries,
                rho_q,
                engine=self.engine_,
                executor=executor,
                process_task=task,
            )

        train = self._fit_points_
        counter = self._counter

        def attach_chunk(chunk: np.ndarray) -> np.ndarray:
            return nearest_denser_bruteforce(
                train, rho_train, queries[chunk], rho_q[chunk], counter=counter
            )

        chunks = executor.map_index_chunks(attach_chunk, n_q)
        if not chunks:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(chunks).astype(np.intp)

    def get_params(self) -> dict[str, Any]:
        """Return the estimator parameters as a plain dictionary."""
        return {
            "algorithm": self.algorithm_name,
            "d_cut": self.d_cut,
            "rho_min": self.rho_min,
            "delta_min": self.delta_min,
            "n_clusters": self.n_clusters,
            "n_jobs": self.n_jobs,
            "backend": self.backend,
            "seed": self.seed,
            "engine": self.engine,
            # The resolved (integer) frontier once fitted, so snapshots of an
            # "auto" fit replay with the identical decomposition and work
            # counters; symbolic before fit.
            "dual_frontier": getattr(self, "_dual_frontier_", None)
            or self.dual_frontier,
            "kernel": self.kernel,
        }

    def __repr__(self) -> str:
        params = ", ".join(
            f"{key}={value!r}"
            for key, value in self.get_params().items()
            if key != "algorithm" and value is not None
        )
        return f"{type(self).__name__}({params})"

    # ----------------------------------------------------------------- helpers

    def _record_phase(
        self,
        name: str,
        policy: str,
        task_costs,
        serial_overhead: float = 0.0,
    ) -> None:
        """Record a parallel phase on the current run's profile (if enabled)."""
        if not self.record_costs:
            return
        self._profile.add_phase(name, policy, task_costs, serial_overhead)

    def _scale_profile_to_timings(
        self, profile: SimulatedMulticore, timings: dict[str, float]
    ) -> None:
        """Rescale recorded per-task cost estimates to measured phase seconds.

        Subclasses record *relative* per-task costs (the same cost models the
        paper's partitioner uses).  To make simulated makespans comparable to
        wall-clock measurements, each phase's costs are rescaled so that their
        total equals the measured duration of the lifecycle step the phase
        belongs to (phases are named ``"<step>:<detail>"`` or ``"<step>"``).
        """
        step_phase_totals: dict[str, float] = {}
        for phase in profile.phases:
            step = phase.name.split(":", 1)[0]
            step_phase_totals[step] = step_phase_totals.get(step, 0.0) + phase.total_cost
        for phase in profile.phases:
            step = phase.name.split(":", 1)[0]
            measured = timings.get(step)
            recorded_total = step_phase_totals.get(step, 0.0)
            if measured is None or recorded_total <= 0.0:
                continue
            scale = measured / recorded_total
            phase.task_costs = phase.task_costs * scale
            phase.serial_overhead = phase.serial_overhead * scale

    def _total_memory_bytes(self, points: np.ndarray) -> int:
        """Points + index structures + per-point result arrays + shared memory.

        The index term includes the flattened kd-tree arrays (node bounds,
        split dims/values, children, and the point-index permutation; see
        :class:`repro.index.kdtree.KDTreeArrays`) through each algorithm's
        :meth:`_index_memory_bytes`.  The shared-memory segment published for
        the process backend is physical memory paid exactly once -- workers
        map the same pages -- so it is counted once here, never per worker.
        """
        per_point_arrays = 5  # rho, rho_raw, delta, dependent, labels
        return int(
            points.nbytes
            + self._index_memory_bytes()
            + per_point_arrays * 8 * points.shape[0]
            + self._shared_memory_bytes()
        )

    def _shared_memory_bytes(self) -> int:
        """Size of the shared-memory segment published for the process backend."""
        bundle = getattr(self, "_shared_bundle", None)
        return bundle.nbytes if bundle is not None else 0

    # ------------------------------------------------------- process backend

    def _shared_arrays(self) -> dict[str, np.ndarray] | None:
        """Arrays to publish to worker processes (subclass hook).

        Subclasses with process kernels return a flat name -> array mapping
        (typically the point matrix plus the flattened kd-tree via
        :func:`repro.parallel.backends.pack_tree_arrays`); ``None`` (the
        default) means the algorithm has no process kernels and its phases
        fall back to the thread path under the process backend.
        """
        return None

    def _process_task(self, kernel, payload=None, payload_fn=None) -> ChunkTask | None:
        """Build the process-backend task descriptor for one parallel phase.

        Returns ``None`` unless this fit runs on the process backend and the
        subclass publishes shared arrays; the caller then simply passes the
        result as ``task=`` to ``map_index_chunks``, keeping the serial and
        thread paths untouched.  The backing shared-memory segment is created
        on first use and reused by every later phase of the same fit.
        """
        if self._executor.backend != "process":
            return None
        if self._shared_bundle is None:
            arrays = self._shared_arrays()
            if arrays is None:
                return None
            self._shared_bundle = SharedArrayBundle.create(arrays)
        return ChunkTask(
            kernel=kernel,
            spec=self._shared_bundle.spec,
            payload=payload or {},
            payload_fn=payload_fn,
            counter=self._counter,
        )

    def _release_parallel_resources(self) -> None:
        """Tear down the worker pool and the shared-memory segment (fit end).

        Order matters: the pool is drained first so no worker still maps the
        segment, then the owner closes its mapping and unlinks the segment
        name.  ``memory_bytes_`` is computed before this runs.
        """
        executor = getattr(self, "_executor", None)
        if executor is not None:
            executor.close()
        bundle = getattr(self, "_shared_bundle", None)
        if bundle is not None:
            bundle.close()
            bundle.unlink()
            self._shared_bundle = None
