"""Out-of-sample assignment kernels shared by every ``predict`` code path.

A fitted DPC model assigns a new point ``q`` the same way ``fit`` assigns any
non-center point: ``q`` attaches to its *dependency target* -- the nearest
fitted point whose (tie-broken) local density exceeds ``q``'s density -- and
inherits that point's cluster label (Definition 6 applied one step beyond the
training set).  The helpers here implement the two primitives:

* :func:`nearest_denser_targets` -- kd-tree batch search with an escalating-k
  kNN frontier.  Among the ``k`` nearest neighbours sorted by ``(distance,
  index)``, the first one denser than the query *is* the global masked
  nearest neighbour (every point outside the top ``k`` is lexicographically
  larger), so the escalation never changes the answer, only the cost.
* :func:`nearest_denser_bruteforce` -- the index-free counterpart used by the
  ``O(n^2)`` baselines (Scan, CFSFDP-A) and by restored snapshots without a
  stored tree.

Both primitives break exact distance ties by the smallest point index and
both use the canonical sequential squared-distance arithmetic of
:mod:`repro.kernels`, so tree and brute-force paths agree bit for bit.

When no fitted point is denser than the query (a brand-new global density
peak), the target falls back to the plain nearest neighbour: a serving layer
cannot mint a new cluster, so the query joins the closest existing structure
(the ``rho_min`` noise rule still applies on top).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import pair_distances_sq

__all__ = [
    "float32_density_recheck",
    "nearest_denser_targets",
    "nearest_denser_bruteforce",
    "predict_density_bruteforce",
]

#: Queries processed per vectorised brute-force block, bounding the
#: ``chunk x n x d`` temporary.
_BRUTE_CHUNK = 256


def nearest_denser_targets(
    tree,
    rho_train,
    queries,
    rho_q,
    *,
    k_initial: int = 8,
    attach_fallback: bool = True,
    return_distance: bool = False,
):
    """Per-query index of the nearest fitted point denser than the query.

    Parameters
    ----------
    tree:
        A fitted :class:`repro.index.kdtree.KDTree` over the training points.
    rho_train:
        Tie-broken training densities (``result.rho_``), one per tree point.
    queries:
        Query matrix of shape ``(q, d)``.
    rho_q:
        Query densities on the *raw* (integer-count) scale.  Tie-broken
        training densities exceed their integer part, so a query colliding
        with a training point always resolves to that point at distance zero.
    k_initial:
        First kNN frontier size; unresolved queries escalate ``k`` by 4x.
    attach_fallback:
        When true (default), queries denser than every fitted point attach to
        their plain nearest neighbour instead of returning ``-1``.
    return_distance:
        When true, also return the distance to each target (``inf`` for
        queries without one).
    """
    rho_train = np.asarray(rho_train, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    rho_q = np.asarray(rho_q, dtype=np.float64).reshape(-1)
    n_train = tree.size
    n_q = queries.shape[0]
    targets = np.full(n_q, -1, dtype=np.intp)
    distances = np.full(n_q, np.inf, dtype=np.float64)
    if n_q == 0 or n_train == 0:
        return (targets, distances) if return_distance else targets

    unresolved = np.arange(n_q, dtype=np.intp)
    k = min(max(1, int(k_initial)), n_train)
    while unresolved.size:
        idx, dist = tree.knn_batch(queries[unresolved], k)
        valid = idx >= 0
        denser = valid & (
            rho_train[np.where(valid, idx, 0)] > rho_q[unresolved, None]
        )
        has = denser.any(axis=1)
        rows = np.flatnonzero(has)
        if rows.size:
            first = np.argmax(denser[rows], axis=1)
            targets[unresolved[rows]] = idx[rows, first]
            distances[unresolved[rows]] = dist[rows, first]
        unresolved = unresolved[~has]
        if k >= n_train:
            break
        k = min(n_train, k * 4)

    if attach_fallback and unresolved.size:
        nn_idx, nn_dist = tree.nearest_neighbor_batch(queries[unresolved])
        targets[unresolved] = nn_idx
        distances[unresolved] = nn_dist
    if return_distance:
        return targets, distances
    return targets


def _block_sq_distances(queries: np.ndarray, train_points: np.ndarray) -> np.ndarray:
    """``(q, n)`` squared distances with the canonical kernel arithmetic."""
    return pair_distances_sq(queries, train_points)


def nearest_denser_bruteforce(
    train_points,
    rho_train,
    queries,
    rho_q,
    *,
    attach_fallback: bool = True,
    counter=None,
    return_distance: bool = False,
):
    """Brute-force counterpart of :func:`nearest_denser_targets`.

    With ``return_distance=True`` also returns the distance to each target
    (``inf`` for queries without one) -- this is the nearest-denser kernel the
    streaming repair uses to recompute ``(dependent, delta)`` pairs, kept
    here so the tie-break and arithmetic contract lives in exactly one place.
    """
    train_points = np.asarray(train_points, dtype=np.float64)
    rho_train = np.asarray(rho_train, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    rho_q = np.asarray(rho_q, dtype=np.float64).reshape(-1)
    n_q = queries.shape[0]
    targets = np.full(n_q, -1, dtype=np.intp)
    target_sq = np.full(n_q, np.inf, dtype=np.float64)
    for start in range(0, n_q, _BRUTE_CHUNK):
        stop = min(start + _BRUTE_CHUNK, n_q)
        d_sq = _block_sq_distances(queries[start:stop], train_points)
        if counter is not None:
            counter.add(
                "distance_calcs", float(stop - start) * float(train_points.shape[0])
            )
        eligible = rho_train[None, :] > rho_q[start:stop, None]
        masked = np.where(eligible, d_sq, np.inf)
        # argmin returns the first minimum, i.e. the smallest index on ties,
        # matching the kd-tree's lexicographic (distance, index) order.
        pos = np.argmin(masked, axis=1)
        has = eligible.any(axis=1)
        block = np.where(has, pos, -1)
        if attach_fallback and (~has).any():
            rows = np.flatnonzero(~has)
            block[rows] = np.argmin(d_sq[rows], axis=1)
        targets[start:stop] = block
        rows = np.arange(stop - start)
        target_sq[start:stop] = np.where(
            block >= 0, d_sq[rows, np.clip(block, 0, None)], np.inf
        )
    if return_distance:
        return targets, np.sqrt(target_sq)
    return targets


def float32_density_recheck(
    train_points,
    queries,
    d_cut: float,
    *,
    ulps: int = 8,
    counter=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Float64 density re-check of the serving float32 policy.

    A float32 kernel can misclassify a (query, train) pair against the
    ``dist < d_cut`` predicate only when the pair's true distance lies within
    a few float32 ulps of ``d_cut`` (the relative error of the storage cast,
    the squared-distance accumulation and the rounded cutoff add up to
    roughly ``(d + 4) / 2`` ulps; ``ulps=8`` covers every dimensionality the
    paper uses with margin).  This scans the full-precision coordinates once
    and returns ``(exact_counts, uncertain_mask)``: the exact float64 strict
    count of every query, and the mask of queries holding at least one train
    point inside the ``d_cut +- ulps`` band.  Callers keep the float32 count
    where the mask is false (provably equal to the float64 count outside the
    band) and substitute the exact count where it is true; see
    ``docs/performance.md`` for the resulting accuracy envelope.
    """
    train_points = np.asarray(train_points, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    d_cut = float(d_cut)
    band = float(ulps) * float(np.spacing(np.float32(d_cut)))
    lo_sq = max(d_cut - band, 0.0) ** 2
    hi_sq = (d_cut + band) ** 2
    d_cut_sq = d_cut * d_cut
    n_q = queries.shape[0]
    exact = np.zeros(n_q, dtype=np.intp)
    uncertain = np.zeros(n_q, dtype=bool)
    for start in range(0, n_q, _BRUTE_CHUNK):
        stop = min(start + _BRUTE_CHUNK, n_q)
        d_sq = _block_sq_distances(queries[start:stop], train_points)
        if counter is not None:
            counter.add(
                "distance_calcs", float(stop - start) * float(train_points.shape[0])
            )
        exact[start:stop] = (d_sq < d_cut_sq).sum(axis=1)
        uncertain[start:stop] = ((d_sq > lo_sq) & (d_sq < hi_sq)).any(axis=1)
    return exact, uncertain


def predict_density_bruteforce(
    train_points, queries, d_cut: float, *, counter=None
) -> np.ndarray:
    """Raw local density of each query over the fitted set (``dist < d_cut``)."""
    train_points = np.asarray(train_points, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    d_cut_sq = float(d_cut) * float(d_cut)
    n_q = queries.shape[0]
    counts = np.zeros(n_q, dtype=np.intp)
    for start in range(0, n_q, _BRUTE_CHUNK):
        stop = min(start + _BRUTE_CHUNK, n_q)
        d_sq = _block_sq_distances(queries[start:stop], train_points)
        if counter is not None:
            counter.add(
                "distance_calcs", float(stop - start) * float(train_points.shape[0])
            )
        counts[start:stop] = (d_sq < d_cut_sq).sum(axis=1)
    return counts
