"""Partition-based exact dependent-point search (§4.3, "Exact computation").

Approx-DPC decides most dependent points approximately in ``O(1)`` time, but a
small set ``P'`` of points -- cell maxima with no denser close cell -- still
needs the *exact* nearest point with higher local density.  Ex-DPC's
incremental tree cannot be used because it is sequential; instead the paper

1. sorts the point set in ascending order of local density,
2. splits it into ``s`` equally sized partitions ``P_1 .. P_s`` (so every point
   of ``P_j`` is denser than every point of ``P_i`` for ``i < j``),
3. builds a kd-tree per partition, and
4. answers each query ``p`` by classifying every partition into one of three
   cases:

   * case (i): the whole partition is denser than ``p`` -- one nearest
     neighbour search on its kd-tree;
   * case (ii): the partition straddles ``rho_p`` (at most one such partition
     exists) -- scan it linearly, keeping only denser points;
   * case (iii): the whole partition is at most as dense as ``p`` -- skip it.

The number of partitions follows Equation (2) of the paper,
``n/s = O((s-1)(n/s)^{1-1/d})``, which balances the scan cost of case (ii)
against the ``s-1`` nearest-neighbour searches; solving it gives
``s ~ n^{1/(d+1)}``.

Because every query is independent, the whole procedure is embarrassingly
parallel; the per-query cost estimate of §4.5 (``cost_dep``) is returned so the
caller can feed the greedy load balancer and the simulated multicore model.

The same routine also serves as the fallback of S-Approx-DPC's second phase
when the set of undecided picked points is too large for the quadratic
temporary-cluster method.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

import numpy as np

from repro.index.kdtree import KDTree
from repro.parallel.backends import kernel_partitioned_dependency
from repro.utils.counters import WorkCounter
from repro.utils.distance import point_to_points_sq

__all__ = [
    "PartitionedDependencySearcher",
    "resolve_undecided_dependencies",
    "solve_partition_count",
]


def resolve_undecided_dependencies(
    searcher: "PartitionedDependencySearcher",
    undecided,
    executor,
    engine: str,
    dependent: np.ndarray,
    delta: np.ndarray,
    exact_mask: np.ndarray,
    *,
    process_task_builder=None,
) -> None:
    """Resolve every undecided index with ``searcher`` and scatter the results.

    Shared by the Approx-DPC fallback and S-Approx-DPC's partitioned second
    phase: ``engine="batch"`` maps :meth:`PartitionedDependencySearcher.query_batch`
    over contiguous chunks of the undecided set, ``engine="scalar"`` maps
    :meth:`PartitionedDependencySearcher.query` one index per task.  Both
    write the dependent index, distance and ``exact_mask=True`` for every
    undecided point.

    ``process_task_builder`` is the estimator's
    :meth:`~repro.core.framework.DensityPeaksBase._process_task` hook.  Under
    the process backend the searcher itself is not pickled: each worker
    rebuilds it once per phase (cached by the ``token`` in the payload) from
    the shared point matrix plus :meth:`PartitionedDependencySearcher.shared_query_params`,
    which is deterministic and therefore bit-identical to the parent's.
    """
    if engine == "batch":
        undecided_arr = np.asarray(undecided, dtype=np.intp)

        task = None
        if process_task_builder is not None:
            payload = {
                "token": secrets.token_hex(8),
                "undecided": undecided_arr,
                **searcher.shared_query_params(),
            }
            task = process_task_builder(kernel_partitioned_dependency, payload)

        def resolve_chunk(chunk):
            return searcher.query_batch(undecided_arr[chunk])

        # On the process path the payload above is O(n) (rho plus the
        # undecided set) and is re-pickled per submission, so one chunk per
        # worker beats the default oversubscription; the thread path pickles
        # nothing and keeps the finer default split for skew tolerance.
        resolutions = executor.map_index_chunks(
            resolve_chunk,
            undecided_arr.size,
            chunks_per_worker=1 if task is not None else 4,
            task=task,
        )
        dependent[undecided_arr] = np.concatenate([r[0] for r in resolutions])
        delta[undecided_arr] = np.concatenate([r[1] for r in resolutions])
        exact_mask[undecided_arr] = True
    else:
        def resolve(index: int) -> tuple[int, int, float]:
            neighbor, distance = searcher.query(index)
            return index, neighbor, distance

        for index, neighbor, distance in executor.map(resolve, list(undecided)):
            dependent[index] = neighbor
            delta[index] = distance
            exact_mask[index] = True


def solve_partition_count(n: int, dim: int) -> int:
    """Return the partition count ``s`` implied by Equation (2) of the paper.

    Equation (2) asks for ``n/s = Theta((s-1)(n/s)^{1-1/d})``, i.e.
    ``(n/s)^{1/d} = Theta(s-1)``, whose solution grows like ``n^{1/(d+1)}``.
    The result is clamped to ``[2, n]`` so small inputs stay valid.
    """
    if n <= 2:
        return max(1, n)
    s = int(round(n ** (1.0 / (dim + 1.0)))) + 1
    return int(min(max(s, 2), n))


@dataclass
class _Partition:
    """One density slice ``P_j`` with its kd-tree."""

    member_indices: np.ndarray  # global indices, ascending density order
    min_rho: float
    max_rho: float
    tree: KDTree


class PartitionedDependencySearcher:
    """Exact dependent-point queries over density-ordered partitions.

    Parameters
    ----------
    points:
        The full point matrix of shape ``(n, d)``.
    rho:
        Tie-broken local densities (all distinct).
    candidate_indices:
        Optional subset of points that are allowed to serve as dependent
        points (S-Approx-DPC restricts candidates to the picked points).
        ``None`` means every point is a candidate.
    n_partitions:
        Number of density slices ``s``; defaults to Equation (2).
    leaf_size:
        kd-tree leaf size for the per-partition trees.
    """

    def __init__(
        self,
        points: np.ndarray,
        rho: np.ndarray,
        *,
        candidate_indices: np.ndarray | None = None,
        n_partitions: int | None = None,
        leaf_size: int = 32,
        counter: WorkCounter | None = None,
    ):
        self._points = points
        self._rho = rho
        self._counter = counter if counter is not None else WorkCounter()
        self._leaf_size = int(leaf_size)
        if candidate_indices is None:
            candidates = np.arange(points.shape[0], dtype=np.intp)
            self._candidate_indices = None
        else:
            candidates = np.asarray(candidate_indices, dtype=np.intp)
            self._candidate_indices = candidates
        if candidates.size == 0:
            raise ValueError("candidate set must not be empty")

        order = candidates[np.argsort(rho[candidates], kind="stable")]
        count = order.shape[0]
        dim = points.shape[1]
        s = (
            solve_partition_count(count, dim)
            if n_partitions is None
            else max(1, min(int(n_partitions), count))
        )
        self._n_partitions = s

        bounds = np.linspace(0, count, s + 1, dtype=int)
        self._partitions: list[_Partition] = []
        for j in range(s):
            members = order[bounds[j] : bounds[j + 1]]
            if members.size == 0:
                continue
            self._partitions.append(
                _Partition(
                    member_indices=members,
                    min_rho=float(rho[members].min()),
                    max_rho=float(rho[members].max()),
                    tree=KDTree(points[members], leaf_size=leaf_size, counter=self._counter),
                )
            )

    @property
    def n_partitions(self) -> int:
        """Number of density slices actually built."""
        return len(self._partitions)

    @property
    def counter(self) -> WorkCounter:
        """The work counter queries report into."""
        return self._counter

    def shared_query_params(self) -> dict:
        """Small picklable parameters from which a worker can rebuild this searcher.

        Construction is deterministic in ``(points, rho, candidate_indices,
        n_partitions, leaf_size)``, so a worker holding the shared point
        matrix reproduces identical partitions and kd-trees; the resolved
        partition count is passed so Equation (2) is not re-derived.
        """
        return {
            "rho": self._rho,
            "candidates": self._candidate_indices,
            "n_partitions": self._n_partitions,
            "leaf_size": self._leaf_size,
        }

    def memory_bytes(self) -> int:
        """Approximate footprint of the per-partition kd-trees."""
        return int(
            sum(
                part.tree.memory_bytes() + part.member_indices.nbytes
                for part in self._partitions
            )
        )

    def query_cost(self, rho_value: float) -> float:
        """The paper's ``cost_dep`` estimate (§4.5) for a query with this density.

        ``n/s + (m-1)(n/s)^{1-1/d}`` when some partition straddles the density
        (case (ii)), ``m (n/s)^{1-1/d}`` otherwise, where ``m`` is the number of
        partitions that may contain the dependent point.
        """
        if not self._partitions:
            return 0.0
        dim = self._points.shape[1]
        avg_size = float(
            np.mean([part.member_indices.size for part in self._partitions])
        )
        nn_cost = avg_size ** (1.0 - 1.0 / dim)
        m = 0
        straddles = False
        for part in self._partitions:
            if part.min_rho > rho_value:
                m += 1
            elif part.max_rho > rho_value:
                m += 1
                straddles = True
        if m == 0:
            return nn_cost
        if straddles:
            return avg_size + (m - 1) * nn_cost
        return m * nn_cost

    def query(self, index: int) -> tuple[int, float]:
        """Return ``(dependent_index, distance)`` for the point ``index``.

        Returns ``(-1, inf)`` when no candidate has higher density (the
        globally densest point).
        """
        query_point = self._points[index]
        query_rho = float(self._rho[index])

        best_idx = -1
        best_sq = np.inf
        for part in self._partitions:
            if part.max_rho <= query_rho:
                # case (iii): every point is at most as dense -- skip.
                continue
            if part.min_rho > query_rho:
                # case (i): every point is denser -- nearest neighbour search.
                local_idx, distance = part.tree.nearest_neighbor(query_point)
                if local_idx >= 0:
                    d_sq = distance * distance
                    if d_sq < best_sq:
                        best_sq = d_sq
                        best_idx = int(part.member_indices[local_idx])
            else:
                # case (ii): the partition straddles the query density -- scan.
                members = part.member_indices
                denser = members[self._rho[members] > query_rho]
                denser = denser[denser != index]
                if denser.size == 0:
                    continue
                self._counter.add("distance_calcs", denser.size)
                d_sq = point_to_points_sq(query_point, self._points[denser])
                pos = int(np.argmin(d_sq))
                if d_sq[pos] < best_sq:
                    best_sq = float(d_sq[pos])
                    best_idx = int(denser[pos])

        if best_idx < 0:
            return -1, np.inf
        return best_idx, float(np.sqrt(best_sq))

    def query_batch(self, indices) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised batch counterpart of :meth:`query`.

        Classifies every (query, partition) pair into the paper's three cases
        at once: case (i) pairs are answered with one batch nearest-neighbour
        search per partition
        (:meth:`repro.index.kdtree.KDTree.nearest_neighbor_batch`), case (ii)
        pairs with a single vectorised scan of the straddling partition, and
        case (iii) pairs are skipped.  Returns ``(dependent_indices,
        distances)`` arrays identical to calling :meth:`query` per index
        (``-1`` / ``inf`` for the globally densest candidate).
        """
        indices = np.asarray(indices, dtype=np.intp).reshape(-1)
        n_queries = indices.size
        best_idx = np.full(n_queries, -1, dtype=np.intp)
        best_sq = np.full(n_queries, np.inf)
        if n_queries == 0:
            return best_idx, best_sq.copy()

        query_points = self._points[indices]
        query_rho = self._rho[indices]
        for part in self._partitions:
            active = part.max_rho > query_rho
            if not active.any():
                continue
            denser_all = part.min_rho > query_rho
            case_i = np.flatnonzero(active & denser_all)
            case_ii = np.flatnonzero(active & ~denser_all)
            if case_i.size:
                local_idx, distance = part.tree.nearest_neighbor_batch(
                    query_points[case_i]
                )
                d_sq = distance * distance
                found = local_idx >= 0
                better = found & (d_sq < best_sq[case_i])
                targets = case_i[better]
                best_sq[targets] = d_sq[better]
                best_idx[targets] = part.member_indices[local_idx[better]]
            if case_ii.size:
                members = part.member_indices
                eligible = (
                    self._rho[members][None, :] > query_rho[case_ii, None]
                ) & (members[None, :] != indices[case_ii, None])
                counts = eligible.sum(axis=1)
                self._counter.add("distance_calcs", float(counts.sum()))
                diff = (
                    query_points[case_ii][:, None, :]
                    - self._points[members][None, :, :]
                )
                d_sq = np.einsum("qjd,qjd->qj", diff, diff)
                d_sq = np.where(eligible, d_sq, np.inf)
                pos = np.argmin(d_sq, axis=1)
                vals = d_sq[np.arange(case_ii.size), pos]
                better = vals < best_sq[case_ii]
                targets = case_ii[better]
                best_sq[targets] = vals[better]
                best_idx[targets] = members[pos[better]]

        return best_idx, np.sqrt(best_sq)
