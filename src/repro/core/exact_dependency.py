"""Compatibility shim: the partition-based exact dependent-point search moved.

The §4.3 machinery (:class:`PartitionedDependencySearcher`,
:func:`solve_partition_count`) now lives in the unified nearest-denser join
layer, :mod:`repro.core.dependency_join`, which owns *every* dependency
search (fit, predict and streaming repair) behind one
``engine={"scalar", "batch", "dual"}`` dispatch.  Import from there; this
module only re-exports the moved names for older callers.
"""

from __future__ import annotations

from repro.core.dependency_join import (
    PartitionedDependencySearcher,
    solve_partition_count,
)

__all__ = ["PartitionedDependencySearcher", "solve_partition_count"]
