"""Ex-DPC: the exact density-peaks clustering algorithm of §3.

Local densities are computed with one kd-tree range count per point
(``O(n(n^{1-1/d} + rho_avg))`` under Assumption 1); with the default
``engine="batch"`` the counts are issued as chunked vectorised batch queries
(:meth:`repro.index.kdtree.KDTree.range_count_batch`) that produce identical
results.

Dependent points are computed exactly; the strategy follows the engine:

* ``engine="scalar"`` keeps the paper's incremental-tree idea: points are
  sorted in descending order of (tie-broken) local density and inserted one
  by one into an initially empty kd-tree; right before inserting point
  ``p_i`` the tree contains exactly the points denser than ``p_i``, so a
  nearest-neighbour query on the current tree returns ``p_i``'s dependent
  point.  This phase is inherently sequential (§3) because the tree must be
  grown in density order.
* ``engine="batch"`` routes the whole point set through the unified
  nearest-denser join layer's partition-based search
  (:func:`repro.core.dependency_join.nearest_denser_join`, the §4.3
  machinery over *all* points), which is both faster and embarrassingly
  parallel -- every query is independent.
* ``engine="dual"`` runs the dependency phase as a dual-tree nearest-denser
  *self-join* (:meth:`repro.index.kdtree.KDTree.range_nn_dual`): one
  simultaneous traversal with per-query best-distance bounds and per-node
  density maxima replaces the ``n`` individual searches.

All three strategies return bit-for-bit identical dependencies, deltas and
labels (the shared lexicographic tie-break and arithmetic contract of
:mod:`repro.core.dependency_join`; property-tested).

Parallelization (§3, "Implementation for parallel processing"): the density
phase is embarrassingly parallel and is scheduled dynamically (OpenMP
``schedule(dynamic)`` in the paper) because per-point costs are unknown in
advance.  The scalar dependency phase is recorded as one sequential block --
reproducing Ex-DPC's thread-scaling plateau (Figure 9) -- while the
batch/dual joins are recorded as dynamically scheduled parallel work.
"""

from __future__ import annotations

import numpy as np

from repro.core.dependency_join import nearest_denser_join
from repro.core.framework import DensityPeaksBase
from repro.index.kdtree import (
    IncrementalKDTree,
    KDTree,
    check_storage_dtype,
)
from repro.parallel.backends import (
    kernel_dual_self_count,
    kernel_range_count,
    pack_tree_arrays,
)

__all__ = ["ExDPC"]


class ExDPC(DensityPeaksBase):
    """Exact DPC over a kd-tree (§3 of the paper).

    Parameters
    ----------
    d_cut:
        Cutoff distance of Definition 1.
    rho_min, delta_min, n_clusters, n_jobs, seed, record_costs, engine:
        See :class:`repro.core.framework.DensityPeaksBase`.
    leaf_size:
        Leaf bucket size of the kd-tree.
    dtype:
        Point-storage dtype of the kd-tree (``"float64"`` or ``"float32"``;
        see :class:`repro.index.kdtree.KDTree`).  Densities are computed in
        the storage precision; the dependency phase always runs in float64.
    """

    algorithm_name = "Ex-DPC"

    # Ex-DPC is exact: densities and dependencies are pure functions of
    # (points, d_cut, seed), so its fits can be replayed at any d_cut from
    # persisted neighbor profiles (see repro.core.recluster).
    supports_recluster = True

    def __init__(
        self,
        d_cut: float,
        *,
        rho_min: float | None = None,
        delta_min: float | None = None,
        n_clusters: int | None = None,
        n_jobs: int = 1,
        backend: str | None = None,
        seed: int | None = 0,
        record_costs: bool = True,
        leaf_size: int = 32,
        engine: str | None = None,
        dtype: str = "float64",
        dual_frontier=None,
        kernel: str | None = None,
    ):
        super().__init__(
            d_cut,
            rho_min=rho_min,
            delta_min=delta_min,
            n_clusters=n_clusters,
            n_jobs=n_jobs,
            backend=backend,
            seed=seed,
            record_costs=record_costs,
            engine=engine,
            dual_frontier=dual_frontier,
            kernel=kernel,
        )
        self.leaf_size = leaf_size
        self.dtype = check_storage_dtype(dtype).name
        self._tree: KDTree | None = None

    # ------------------------------------------------------------------ index

    def _build_index(self, points: np.ndarray) -> None:
        self._tree = KDTree(
            points,
            leaf_size=self.leaf_size,
            counter=self._counter,
            dtype=self.dtype,
            kernel=self.kernel,
        )

    def get_params(self):
        params = super().get_params()
        params["leaf_size"] = self.leaf_size
        params["dtype"] = self.dtype
        return params

    def _index_memory_bytes(self) -> int:
        return self._tree.memory_bytes() if self._tree is not None else 0

    def _shared_arrays(self):
        return pack_tree_arrays(self._tree)

    # ---------------------------------------------------------------- density

    def _compute_local_density(self, points: np.ndarray) -> np.ndarray:
        tree = self._tree
        n = points.shape[0]

        if self.engine_ == "dual":
            # Dual-tree self-join: expand the (root, root) pair into a fixed
            # frontier of independent node-pair work units, then traverse
            # each unit's subjoin.  The frontier is the canonical chunking
            # for every backend -- under the process backend the pair slices
            # ship as picklable tasks against the shared-memory tree -- so
            # counts *and* work counters match the serial run bit for bit.
            pairs, base = tree.dual_self_frontier(
                self.d_cut, strict=True, target_pairs=self.dual_frontier_
            )
            task = self._process_task(
                kernel_dual_self_count,
                payload_fn=lambda chunk: {"d_cut": self.d_cut, "pairs": pairs[chunk]},
            )

            def count_pair_chunk(chunk: np.ndarray) -> np.ndarray:
                return tree.range_count_dual_pairs(
                    pairs[chunk], self.d_cut, strict=True
                )

            contributions = self._executor.map_index_chunks(
                count_pair_chunk, len(pairs), task=task
            )
            rho = base.astype(np.float64)
            for contribution in contributions:
                rho += contribution
        elif self.engine_ == "batch":
            # Chunked batch queries: each worker answers a contiguous block of
            # points with one vectorised tree traversal.  Under the process
            # backend the same computation runs as a picklable chunk task
            # against the shared-memory copy of the flattened tree.
            task = self._process_task(kernel_range_count, {"d_cut": self.d_cut})

            def density_of_chunk(chunk: np.ndarray) -> np.ndarray:
                return tree.range_count_batch(points[chunk], self.d_cut, strict=True)

            counts = self._executor.map_index_chunks(density_of_chunk, n, task=task)
            rho = np.concatenate(counts).astype(np.float64)
        else:
            def density_of(index: int) -> int:
                return tree.range_count(points[index], self.d_cut, strict=True)

            rho = np.asarray(
                self._executor.map(density_of, list(range(n))), dtype=np.float64
            )

        # The range-search cost of point i is O(n^{1-1/d} + rho_i); the paper
        # parallelises this loop with dynamic scheduling because rho_i is not
        # known beforehand.
        traversal = float(n ** (1.0 - 1.0 / points.shape[1]))
        self._record_phase("local_density", "dynamic", rho + traversal)
        return rho

    # ------------------------------------------------------------ dependencies

    def _compute_dependencies(
        self, points: np.ndarray, rho: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = points.shape[0]
        exact_mask = np.ones(n, dtype=bool)
        engine = self.engine_

        if engine != "scalar":
            # Unified nearest-denser join over the full point set: the batch
            # engine classifies (query, partition) pairs over density
            # slices, the dual engine runs one simultaneous tree-vs-itself
            # traversal; both are embarrassingly parallel over queries (and
            # bit-identical to the incremental scalar phase below).
            outcome = nearest_denser_join(
                points,
                rho,
                engine=engine,
                executor=self._executor,
                counter=self._counter,
                tree=self._tree,
                leaf_size=self.leaf_size,
                frontier_target=self.dual_frontier_,
                process_task_builder=self._process_task,
            )
            self._record_phase("dependency", "dynamic", outcome.cost_estimates)
            return outcome.dependent, outcome.delta, exact_mask

        dependent = np.full(n, -1, dtype=np.intp)
        delta = np.full(n, np.inf, dtype=np.float64)
        order = np.argsort(rho, kind="stable")[::-1]

        # Incrementally grow a kd-tree in descending density order: the tree
        # always holds exactly the points denser than the current query.
        incremental = IncrementalKDTree(points, counter=self._counter)
        densest = int(order[0])
        incremental.insert(densest)
        for position in range(1, n):
            index = int(order[position])
            neighbor, distance = incremental.nearest_neighbor(points[index])
            dependent[index] = neighbor
            delta[index] = distance
            incremental.insert(index)

        # Sequential by construction (§3): record the whole phase as one
        # non-parallelisable block so the simulated thread scaling shows the
        # plateau observed in Figure 9.
        self._record_phase("dependency", "sequential", [float(n)])
        return dependent, delta, exact_mask
