"""The decision graph of Density-Peaks Clustering.

The decision graph plots every point's local density ``rho`` against its
dependent distance ``delta`` (Figure 1 of the paper).  Cluster centers stand
out in the upper region -- they are dense *and* far from any denser point --
which is what lets a non-expert pick ``rho_min`` and ``delta_min`` visually.

:class:`DecisionGraph` supports that workflow programmatically:

* :meth:`DecisionGraph.gamma` ranks points by ``gamma = rho * delta``
  (the standard automatic-center heuristic),
* :meth:`DecisionGraph.suggest_centers` picks the ``k`` best centers,
* :meth:`DecisionGraph.suggest_thresholds` proposes ``rho_min`` / ``delta_min``
  values that separate exactly ``k`` centers, and
* :meth:`DecisionGraph.to_text` renders an ASCII scatter for terminal use
  (no plotting dependency is required anywhere in the library).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecisionGraph"]


@dataclass(frozen=True)
class DecisionGraph:
    """A ``(rho, delta)`` decision graph.

    Parameters
    ----------
    rho:
        Local densities (raw integer counts are fine).
    delta:
        Dependent distances; exactly one entry (the densest point) may be
        ``inf``.
    """

    rho: np.ndarray
    delta: np.ndarray

    def __post_init__(self):
        rho = np.asarray(self.rho, dtype=np.float64)
        delta = np.asarray(self.delta, dtype=np.float64)
        if rho.shape != delta.shape or rho.ndim != 1:
            raise ValueError("rho and delta must be 1-D arrays of the same length")
        object.__setattr__(self, "rho", rho)
        object.__setattr__(self, "delta", delta)

    @property
    def n_points(self) -> int:
        """Number of points in the graph."""
        return int(self.rho.shape[0])

    def _finite_delta(self) -> np.ndarray:
        """Delta values with ``inf`` replaced by the largest finite delta."""
        delta = self.delta.copy()
        finite = delta[np.isfinite(delta)]
        ceiling = float(finite.max()) if finite.size else 1.0
        delta[~np.isfinite(delta)] = ceiling
        return delta

    def gamma(self) -> np.ndarray:
        """Return the center score ``gamma_i = rho_i * delta_i`` per point.

        The densest point's infinite delta is replaced by the largest finite
        delta so its score stays comparable.
        """
        return self.rho * self._finite_delta()

    def suggest_centers(self, n_clusters: int, rho_min: float = 0.0) -> np.ndarray:
        """Return the indices of the ``n_clusters`` points with highest gamma.

        Points with ``rho < rho_min`` are never suggested.
        """
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        scores = self.gamma()
        scores = np.where(self.rho >= rho_min, scores, -np.inf)
        eligible = int(np.count_nonzero(np.isfinite(scores) & (scores > -np.inf)))
        if n_clusters > eligible:
            raise ValueError(
                f"cannot select {n_clusters} centers: only {eligible} points have "
                f"rho >= {rho_min}"
            )
        order = np.argsort(scores, kind="stable")[::-1]
        return order[:n_clusters]

    def suggest_thresholds(
        self, n_clusters: int, rho_min: float = 0.0
    ) -> tuple[float, float]:
        """Return ``(rho_min, delta_min)`` values that select ``n_clusters`` centers.

        ``delta_min`` is placed halfway (geometrically) between the
        ``n_clusters``-th and ``n_clusters + 1``-th largest dependent distances
        among points with ``rho >= rho_min``, mimicking how an analyst would
        read the gap in the decision graph.  Raw deltas are ranked -- the
        densest point's ``inf`` outranks everything, matching the ``>=``
        threshold semantics of center selection -- and a :class:`ValueError`
        is raised when the two distances are exactly tied, because then no
        threshold selects exactly ``n_clusters`` centers.
        """
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        delta = self.delta
        eligible = self.rho >= rho_min
        candidate_delta = np.sort(delta[eligible])[::-1]
        if candidate_delta.size < n_clusters:
            raise ValueError(
                f"cannot find {n_clusters} centers among {candidate_delta.size} "
                "eligible points"
            )
        kth = candidate_delta[n_clusters - 1]
        if candidate_delta.size == n_clusters:
            delta_min = float(kth)
        else:
            next_one = candidate_delta[n_clusters]
            if next_one == kth:
                raise ValueError(
                    f"the {n_clusters}-th and {n_clusters + 1}-th largest "
                    f"dependent distances are exactly equal ({kth!r}); no "
                    f"delta_min can select exactly {n_clusters} centers -- "
                    "pass n_clusters to the estimator instead"
                )
            # Any delta_min in (next_one, kth] selects exactly n_clusters
            # centers under the >= threshold semantics.  The geometric (then
            # arithmetic) midpoint mimics reading the gap in the graph, but
            # either can collapse onto an endpoint -- tiny magnitudes hit the
            # 1e-12 guards, adjacent floats round to an endpoint, an infinite
            # kth poisons both -- so clamp step by step and fall back to a
            # value that is always exact.
            if np.isinf(kth):
                delta_min = float(2.0 * next_one) if next_one > 0.0 else 1.0
            else:
                delta_min = float(
                    np.sqrt(max(kth, 1e-12) * max(next_one, 1e-12))
                )
                if not next_one < delta_min < kth:
                    delta_min = float(0.5 * (kth + next_one))
                if not next_one < delta_min <= kth:
                    delta_min = float(kth)
        return float(rho_min), float(delta_min)

    def to_text(self, width: int = 60, height: int = 20) -> str:
        """Render the decision graph as an ASCII scatter plot.

        Each cell of the ``width x height`` character grid is marked with
        ``*`` if any point falls into it; the vertical axis is delta, the
        horizontal axis is rho.
        """
        if width < 10 or height < 5:
            raise ValueError("width must be >= 10 and height >= 5")
        delta = self._finite_delta()
        rho = self.rho
        rho_span = max(float(rho.max() - rho.min()), 1e-12)
        delta_span = max(float(delta.max() - delta.min()), 1e-12)
        cols = ((rho - rho.min()) / rho_span * (width - 1)).astype(int)
        rows = ((delta - delta.min()) / delta_span * (height - 1)).astype(int)
        grid = [[" "] * width for _ in range(height)]
        for row, col in zip(rows, cols):
            grid[height - 1 - row][col] = "*"
        lines = ["delta"]
        lines.extend("|" + "".join(row) for row in grid)
        lines.append("+" + "-" * width + "> rho")
        return "\n".join(lines)
