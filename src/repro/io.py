"""Dataset and result persistence.

Small, dependency-free helpers so that the library can be used from the
command line and from batch pipelines:

* :func:`load_points` / :func:`save_points` -- read and write point matrices
  as CSV (with or without header), ``.npy`` or ``.npz`` (every format
  round-trips through both functions; unknown extensions raise a clear
  error on save instead of silently writing text).
* :func:`save_result` / :func:`load_result_labels` -- persist a clustering
  outcome (labels, densities, dependent distances, centers and the run
  metadata) as a CSV plus a small JSON sidecar.
* :func:`save_model` / :func:`load_model` (re-exported from
  :mod:`repro.stream.snapshot`) -- serialize a *fitted* estimator to a
  single ``.npz`` snapshot and restore it (optionally memory-mapped) on a
  serving replica.

These helpers back :mod:`repro.cli`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.result import DPCResult
from repro.stream.snapshot import MODEL_FORMAT_VERSION, load_model, save_model
from repro.utils.validation import check_points

__all__ = [
    "load_points",
    "save_points",
    "save_result",
    "load_result_labels",
    "save_model",
    "load_model",
    "MODEL_FORMAT_VERSION",
]

#: Suffixes written as delimited text (an empty suffix keeps the historical
#: "bare path means text" behaviour).
_TEXT_SUFFIXES = frozenset({".csv", ".txt", ".tsv", ""})


def load_points(path: str | Path, delimiter: str = ",") -> np.ndarray:
    """Load a point matrix from ``.npy``, ``.npz`` or delimited text.

    ``.npz`` archives must hold the matrix under the key ``"points"`` (what
    :func:`save_points` writes) or contain exactly one array.  Text files may
    start with a non-numeric header line, which is skipped.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"dataset file not found: {path}")
    suffix = path.suffix.lower()
    if suffix == ".npy":
        points = np.load(path)
        return check_points(points, name=str(path))
    if suffix == ".npz":
        with np.load(path, allow_pickle=False) as archive:
            if "points" in archive.files:
                points = archive["points"]
            elif len(archive.files) == 1:
                points = archive[archive.files[0]]
            else:
                raise ValueError(
                    f"{path} holds arrays {sorted(archive.files)}; expected a "
                    "'points' array (as written by save_points)"
                )
        return check_points(points, name=str(path))

    with path.open("r", encoding="utf-8") as handle:
        first_line = handle.readline()
    skip = 0
    try:
        [float(token) for token in first_line.strip().split(delimiter) if token != ""]
    except ValueError:
        skip = 1
    try:
        points = np.loadtxt(path, delimiter=delimiter, skiprows=skip, ndmin=2)
    except ValueError as exc:
        raise ValueError(
            f"could not parse {path} as {delimiter!r}-delimited text "
            f"(supported formats: .npy, .npz, delimited text): {exc}"
        ) from exc
    return check_points(points, name=str(path))


def save_points(points, path: str | Path, delimiter: str = ",") -> Path:
    """Write a point matrix as ``.npy``, ``.npz`` or delimited text.

    The format is chosen by the path suffix; an unknown suffix raises a
    ``ValueError`` (historically anything non-``.npy`` was silently written
    as text, which made ``save_points(p, "x.npz")`` produce a file
    :func:`load_points` could not read back).
    """
    points = check_points(points, name="points")
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix not in _TEXT_SUFFIXES and suffix not in (".npy", ".npz"):
        raise ValueError(
            f"unsupported dataset extension {path.suffix!r} for {path}; "
            "use .npy, .npz, or a delimited-text extension (.csv/.txt/.tsv)"
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    if suffix == ".npy":
        np.save(path, points)
    elif suffix == ".npz":
        np.savez(path, points=points)
    else:
        header = delimiter.join(f"x{dim}" for dim in range(points.shape[1]))
        np.savetxt(path, points, delimiter=delimiter, header=header, comments="")
    return path


def save_result(result: DPCResult, path: str | Path, delimiter: str = ",") -> Path:
    """Persist a clustering result.

    Writes ``<path>`` as a CSV with one row per point (label, rho, delta,
    dependent index, noise flag) and ``<path with .json suffix>`` with the run
    metadata (algorithm, parameters, timings, work counts, memory, centers).

    Returns the CSV path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    table = np.column_stack(
        [
            result.labels_,
            result.rho_raw_,
            result.delta_,
            result.dependent_,
            result.noise_mask_.astype(np.int64),
        ]
    )
    header = delimiter.join(["label", "rho", "delta", "dependent", "is_noise"])
    np.savetxt(path, table, delimiter=delimiter, header=header, comments="", fmt="%.10g")

    metadata = {
        "algorithm": result.algorithm_,
        "params": result.params_,
        "n_points": result.n_points,
        "n_clusters": result.n_clusters_,
        "n_noise": result.n_noise,
        "centers": [int(center) for center in result.centers_],
        "timings_s": result.timings_,
        "work": result.work_,
        "memory_bytes": int(result.memory_bytes_),
    }
    sidecar = path.with_suffix(".json")
    sidecar.write_text(json.dumps(metadata, indent=2, sort_keys=True), encoding="utf-8")
    return path


def load_result_labels(path: str | Path, delimiter: str = ",") -> np.ndarray:
    """Load just the label column from a CSV written by :func:`save_result`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"result file not found: {path}")
    table = np.loadtxt(path, delimiter=delimiter, skiprows=1, ndmin=2)
    return table[:, 0].astype(np.int64)
