"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file only exists so
that ``pip install -e .`` keeps working on offline machines whose setuptools
lacks the ``wheel`` package required by the PEP 517 editable-install path
(``pip install -e . --no-use-pep517`` falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
