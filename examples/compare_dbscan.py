"""DPC versus DBSCAN on overlapping Gaussian clusters (the paper's Figure 2).

Run with::

    python examples/compare_dbscan.py

The paper motivates DPC with a qualitative comparison: on the S-sets, DBSCAN
merges clusters that are connected by border points, while DPC splits them at
the density peaks.  This example quantifies that comparison with the adjusted
Rand index against the generating mixture components, tuning DBSCAN the same
way the paper does (pick ``eps`` so that OPTICS yields 15 clusters).
"""

from __future__ import annotations

import numpy as np

from repro import DBSCAN, OPTICS, ExDPC, adjusted_rand_index
from repro.data import generate_s_set


def tune_dbscan_eps(points: np.ndarray, target_clusters: int) -> float:
    """Pick the eps whose OPTICS extraction is closest to the target count."""
    optics = OPTICS(eps=60_000.0, min_pts=5).fit(points)
    candidates = np.linspace(8_000.0, 60_000.0, 14)
    gaps = [abs(optics.n_clusters_at(eps) - target_clusters) for eps in candidates]
    return float(candidates[int(np.argmin(gaps))])


def main() -> None:
    for overlap, name in [(2, "S2 (moderate overlap)"), (4, "S4 (heavy overlap)")]:
        points, truth = generate_s_set(overlap=overlap, n_points=4_000, seed=3)

        dpc = ExDPC(d_cut=25_000.0, rho_min=5, n_clusters=15, seed=0).fit(points)
        dpc_score = adjusted_rand_index(truth, dpc.labels_)

        eps = tune_dbscan_eps(points, target_clusters=15)
        dbscan = DBSCAN(eps=eps, min_pts=5).fit(points)
        dbscan_score = adjusted_rand_index(truth, dbscan.labels_)

        print(f"dataset {name}")
        print(f"  DPC    : {dpc.n_clusters_:>3d} clusters, ARI = {dpc_score:.3f}")
        print(
            f"  DBSCAN : {dbscan.n_clusters_:>3d} clusters, ARI = {dbscan_score:.3f} "
            f"(eps tuned to {eps:.0f} via OPTICS)"
        )
        winner = "DPC" if dpc_score > dbscan_score else "DBSCAN"
        print(f"  -> {winner} matches the generating clusters better\n")


if __name__ == "__main__":
    main()
