"""Thread-scaling behaviour of each algorithm (the paper's Figure 9, simulated).

Run with::

    python examples/scaling_threads.py

Every estimator records, for each phase, the scheduling policy the paper uses
(dynamic, cost-based greedy, or none for Ex-DPC's sequential dependency phase)
and the per-task costs.  The ``parallel_profile_`` of a result can then answer
"how long would this run take on t threads?".  This example prints the
simulated speedup curves, which reproduce the shapes of Figure 9:

* Approx-DPC and S-Approx-DPC scale almost linearly,
* Ex-DPC plateaus because its dependency phase cannot be parallelised,
* LSH-DDP is limited by its lack of load balancing.

See DESIGN.md for why thread scaling is simulated rather than measured with
real threads (CPython's GIL).
"""

from __future__ import annotations

from repro import ApproxDPC, ExDPC, LSHDDP, SApproxDPC, ScanDPC
from repro.data import generate_syn

THREADS = (1, 2, 4, 8, 12, 24, 48)


def main() -> None:
    points, _ = generate_syn(n_points=6_000, n_peaks=13, seed=0)
    d_cut = 2_000.0

    algorithms = [
        ScanDPC(d_cut=d_cut, rho_min=5, n_clusters=13, seed=0),
        ExDPC(d_cut=d_cut, rho_min=5, n_clusters=13, seed=0),
        ApproxDPC(d_cut=d_cut, rho_min=5, n_clusters=13, seed=0),
        SApproxDPC(d_cut=d_cut, epsilon=0.5, rho_min=5, n_clusters=13, seed=0),
        LSHDDP(d_cut=d_cut, rho_min=5, n_clusters=13, seed=0),
    ]

    header = "algorithm      " + "".join(f"{t:>8d}" for t in THREADS)
    print("simulated speedup over single-thread execution")
    print(header)
    print("-" * len(header))
    for model in algorithms:
        result = model.fit(points)
        profile = result.parallel_profile_
        speedups = [profile.speedup(t) for t in THREADS]
        row = f"{result.algorithm_:15s}" + "".join(f"{s:8.1f}" for s in speedups)
        print(row)

    print(
        "\nEx-DPC saturates early (sequential dependency phase); the"
        " approximation algorithms keep scaling, as in Figure 9 of the paper."
    )


if __name__ == "__main__":
    main()
