"""Decision-graph workflow: pick rho_min / delta_min like the paper's Figure 1.

Run with::

    python examples/decision_graph_tour.py

DPC's selling point is that an analyst who is not a domain expert can read the
number of clusters directly off the decision graph (local density vs dependent
distance).  This example reproduces that workflow on an S2-style dataset
(15 Gaussian clusters):

1. run Ex-DPC once with a provisional number of clusters,
2. render the decision graph as ASCII art and print the suggested thresholds,
3. re-run with the thresholds (Definition 4/5) and verify that exactly 15
   clusters emerge.
"""

from __future__ import annotations

from repro import ExDPC
from repro.data import generate_s_set


def main() -> None:
    points, _ = generate_s_set(overlap=2, n_points=5_000, seed=7)
    d_cut = 25_000.0  # the domain is [0, 1e6]^2

    print("step 1: exploratory run (15 centers by the gamma heuristic)")
    exploratory = ExDPC(d_cut=d_cut, rho_min=5, n_clusters=15, seed=0).fit(points)
    graph = exploratory.decision_graph()

    print("\nstep 2: the decision graph (each * is one point)")
    print(graph.to_text(width=70, height=18))

    rho_min, delta_min = graph.suggest_thresholds(15, rho_min=5)
    print(f"\nsuggested thresholds: rho_min={rho_min:.0f}, delta_min={delta_min:.0f}")
    print(
        "the 15 cluster centers sit isolated at the top of the graph, "
        "exactly as in Figure 1(b) of the paper"
    )

    print("\nstep 3: final clustering with the thresholds")
    final = ExDPC(d_cut=d_cut, rho_min=rho_min, delta_min=delta_min, seed=0).fit(points)
    print(final.summary())
    sizes = sorted(final.cluster_sizes().values(), reverse=True)
    print(f"cluster sizes: {sizes}")


if __name__ == "__main__":
    main()
