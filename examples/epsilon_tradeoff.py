"""S-Approx-DPC's accuracy / speed trade-off (the paper's Table 5).

Run with::

    python examples/epsilon_tradeoff.py

S-Approx-DPC converts point clustering into cell clustering; the cell size is
controlled by the approximation parameter ``epsilon``.  Larger values mean
fewer cells, fewer range searches and a coarser result.  This example sweeps
``epsilon`` on an Airline-like workload and reports runtime, distance
computations and the Rand index against Ex-DPC -- the same three-way
trade-off as Table 5.
"""

from __future__ import annotations

from repro import ExDPC, SApproxDPC, rand_index
from repro.data import generate_real_like

EPSILONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def main() -> None:
    points, spec = generate_real_like("airline", n_points=6_000, seed=0)
    d_cut = spec.default_d_cut

    print(f"dataset: {spec.name}-like stand-in ({points.shape[0]} points, d={spec.dim})")
    exact = ExDPC(d_cut=d_cut, rho_min=5, n_clusters=20, seed=0).fit(points)
    print(f"Ex-DPC reference: {exact.timings_['total']:.2f}s, 20 clusters\n")

    print(f"{'epsilon':>8s} {'time [s]':>10s} {'distance calcs':>16s} {'Rand index':>12s}")
    for epsilon in EPSILONS:
        result = SApproxDPC(
            d_cut=d_cut, epsilon=epsilon, rho_min=5, n_clusters=20, seed=0
        ).fit(points)
        score = rand_index(exact.labels_, result.labels_)
        print(
            f"{epsilon:8.1f} {result.timings_['total']:10.2f} "
            f"{result.work_['total_distance_calcs']:16,.0f} {score:12.3f}"
        )

    print(
        "\nlarger epsilon -> fewer cells -> less work, slightly lower accuracy"
        " (Table 5 of the paper)"
    )


if __name__ == "__main__":
    main()
