"""Quickstart: cluster a synthetic dataset with the three paper algorithms.

Run with::

    python examples/quickstart.py

The script generates the random-walk ``Syn`` dataset (the paper's 2-D
effectiveness dataset, scaled down), clusters it with Ex-DPC, Approx-DPC and
S-Approx-DPC, and prints each run's summary plus the agreement (Rand index)
between the exact and the approximate results.
"""

from __future__ import annotations

from repro import ApproxDPC, ExDPC, SApproxDPC, rand_index
from repro.data import generate_syn


def main() -> None:
    # The paper's Syn has 100,000 points and 13 density peaks; 6,000 points
    # keep this example fast while preserving the 13-peak structure.
    points, _ = generate_syn(n_points=6_000, n_peaks=13, seed=0)
    d_cut = 2_000.0  # cutoff distance (the domain is [0, 100_000]^2)

    print(f"dataset: Syn ({points.shape[0]} points, 13 density peaks)\n")

    exact = ExDPC(d_cut=d_cut, rho_min=5, n_clusters=13, seed=0).fit(points)
    print(exact.summary())
    print()

    approx = ApproxDPC(d_cut=d_cut, rho_min=5, n_clusters=13, seed=0).fit(points)
    print(approx.summary())
    print(f"Rand index vs Ex-DPC : {rand_index(exact.labels_, approx.labels_):.4f}")
    print()

    sampled = SApproxDPC(
        d_cut=d_cut, epsilon=0.5, rho_min=5, n_clusters=13, seed=0
    ).fit(points)
    print(sampled.summary())
    print(f"Rand index vs Ex-DPC : {rand_index(exact.labels_, sampled.labels_):.4f}")
    print()

    print("distance computations per algorithm (density + dependency):")
    for result in (exact, approx, sampled):
        print(
            f"  {result.algorithm_:13s} "
            f"{result.work_['density_distance_calcs']:>12,.0f} + "
            f"{result.work_['dependency_distance_calcs']:>12,.0f}"
        )


if __name__ == "__main__":
    main()
